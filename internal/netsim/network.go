package netsim

import (
	"fmt"
	"sort"
)

// Network is a collection of elements with parent/child adjacency — the
// topological structure the paper infers from daily configuration
// snapshots (§2.2) and uses for control-group selection (§3.3).
type Network struct {
	elements map[string]*Element
	order    []string            // insertion order, for deterministic iteration
	children map[string][]string // parent ID → child IDs
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		elements: make(map[string]*Element),
		children: make(map[string][]string),
	}
}

// Add inserts an element. It panics on a duplicate ID or (for non-root
// elements) an unknown parent, both of which indicate broken topology
// construction.
func (n *Network) Add(e *Element) {
	if e.ID == "" {
		panic("netsim: element with empty ID")
	}
	if _, dup := n.elements[e.ID]; dup {
		panic(fmt.Sprintf("netsim: duplicate element ID %q", e.ID))
	}
	if e.Parent != "" {
		if _, ok := n.elements[e.Parent]; !ok {
			panic(fmt.Sprintf("netsim: element %q references unknown parent %q", e.ID, e.Parent))
		}
	}
	n.elements[e.ID] = e
	n.order = append(n.order, e.ID)
	if e.Parent != "" {
		n.children[e.Parent] = append(n.children[e.Parent], e.ID)
	}
}

// Element returns the element with the given ID, or nil if absent.
func (n *Network) Element(id string) *Element { return n.elements[id] }

// MustElement returns the element with the given ID, panicking if absent.
func (n *Network) MustElement(id string) *Element {
	e := n.elements[id]
	if e == nil {
		panic(fmt.Sprintf("netsim: unknown element %q", id))
	}
	return e
}

// Len returns the number of elements.
func (n *Network) Len() int { return len(n.order) }

// IDs returns all element IDs in insertion order. The slice is a copy.
func (n *Network) IDs() []string {
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// Children returns the IDs of the direct children of id, in insertion
// order. The slice is a copy.
func (n *Network) Children(id string) []string {
	kids := n.children[id]
	out := make([]string, len(kids))
	copy(out, kids)
	return out
}

// Descendants returns all transitive children of id, in breadth-first
// order — the "causal impact scope" of a change at an upstream element
// (paper §2.2).
func (n *Network) Descendants(id string) []string {
	var out []string
	queue := n.Children(id)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		queue = append(queue, n.children[cur]...)
	}
	return out
}

// Ancestors returns the chain of parents of id from nearest to root.
func (n *Network) Ancestors(id string) []string {
	var out []string
	e := n.elements[id]
	for e != nil && e.Parent != "" {
		out = append(out, e.Parent)
		e = n.elements[e.Parent]
	}
	return out
}

// OfKind returns the IDs of all elements of the given kind, in insertion
// order.
func (n *Network) OfKind(k Kind) []string {
	var out []string
	for _, id := range n.order {
		if n.elements[id].Kind == k {
			out = append(out, id)
		}
	}
	return out
}

// InRegion returns the IDs of all elements in the given region, in
// insertion order.
func (n *Network) InRegion(r Region) []string {
	var out []string
	for _, id := range n.order {
		if n.elements[id].Region == r {
			out = append(out, id)
		}
	}
	return out
}

// Filter returns the IDs of elements satisfying pred, in insertion order.
func (n *Network) Filter(pred func(*Element) bool) []string {
	var out []string
	for _, id := range n.order {
		if pred(n.elements[id]) {
			out = append(out, id)
		}
	}
	return out
}

// WithinKm returns the IDs of elements within radius km of the given
// element (excluding itself), ordered by ascending distance with ID
// tie-break.
func (n *Network) WithinKm(id string, radius float64) []string {
	center := n.MustElement(id)
	type cand struct {
		id string
		d  float64
	}
	var cands []cand
	for _, other := range n.order {
		if other == id {
			continue
		}
		d := DistanceKm(center.Location, n.elements[other].Location)
		if d <= radius {
			cands = append(cands, cand{other, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// Siblings returns the IDs of elements sharing id's parent (excluding id
// itself) — e.g. NodeBs under the same RNC, the paper's topological
// control-group predicate for GSM/UMTS (§4.2).
func (n *Network) Siblings(id string) []string {
	e := n.MustElement(id)
	if e.Parent == "" {
		return nil
	}
	var out []string
	for _, kid := range n.children[e.Parent] {
		if kid != id {
			out = append(out, kid)
		}
	}
	return out
}

// CouplingWeights models shared-load interference around a change at id:
// for every sibling (the topological control-group predicate), the
// fraction of the change's latent quality effect that bleeds into that
// sibling through shared congestion — users and traffic displaced by the
// change redistribute onto nearby co-parented towers, so a study-group
// injection leaks into exactly the elements the control regression
// treats as independent ("Unbiased Experiments in Congested Networks":
// interference makes the control group absorb part of the treatment).
//
// strength is the fraction received by a hypothetical zero-distance
// sibling; the fraction decays gently with geographic distance on the
// scale of twice the mean sibling distance, w = strength · d0/(d0+d)
// with d0 = 2·mean — towers sharing an RNC also share backhaul and
// overlapping coverage, so even the far siblings keep most of the
// coupling. Weights are clamped to [0, 1] and the result is
// deterministic in the topology. Siblings at unknown coordinates
// (mean distance 0) all receive the full clamped strength.
func (n *Network) CouplingWeights(id string, strength float64) map[string]float64 {
	sibs := n.Siblings(id)
	if len(sibs) == 0 || strength == 0 {
		return nil
	}
	if strength < 0 {
		strength = 0
	}
	if strength > 1 {
		strength = 1
	}
	center := n.MustElement(id)
	dists := make([]float64, len(sibs))
	var mean float64
	for i, sid := range sibs {
		dists[i] = DistanceKm(center.Location, n.elements[sid].Location)
		mean += dists[i]
	}
	mean /= float64(len(sibs))
	out := make(map[string]float64, len(sibs))
	for i, sid := range sibs {
		w := strength
		if mean > 0 {
			d0 := 2 * mean
			w = strength * d0 / (d0 + dists[i])
		}
		out[sid] = w
	}
	return out
}

// SameZip returns the IDs of same-kind elements sharing id's zip code
// (excluding id) — the paper's geographic predicate for LTE (§4.2).
func (n *Network) SameZip(id string) []string {
	e := n.MustElement(id)
	var out []string
	for _, other := range n.order {
		oe := n.elements[other]
		if other != id && oe.ZipCode == e.ZipCode && oe.Kind == e.Kind {
			out = append(out, other)
		}
	}
	return out
}

// Validate checks structural invariants: every parent exists, no cycles,
// towers parent to controllers, controllers to core elements. It returns
// a descriptive error on the first violation.
func (n *Network) Validate() error {
	for _, id := range n.order {
		e := n.elements[id]
		if e.Parent == "" {
			continue
		}
		p := n.elements[e.Parent]
		if p == nil {
			return fmt.Errorf("netsim: element %q has unknown parent %q", id, e.Parent)
		}
		switch {
		case e.Kind == NodeB || e.Kind == BTS:
			if !p.Kind.IsController() {
				return fmt.Errorf("netsim: tower %q parented to non-controller %q (%s)", id, p.ID, p.Kind)
			}
		case e.Kind == Cell:
			if !p.Kind.IsTower() {
				return fmt.Errorf("netsim: cell %q parented to non-tower %q (%s)", id, p.ID, p.Kind)
			}
		case e.Kind == RNC || e.Kind == BSC || e.Kind == ENodeB:
			if !p.Kind.IsCore() {
				return fmt.Errorf("netsim: controller %q parented to non-core %q (%s)", id, p.ID, p.Kind)
			}
		}
		// Cycle check via ancestor walk with a bound.
		seen := map[string]bool{id: true}
		for cur := e.Parent; cur != ""; {
			if seen[cur] {
				return fmt.Errorf("netsim: parent cycle involving %q", cur)
			}
			seen[cur] = true
			next := n.elements[cur]
			if next == nil {
				break
			}
			cur = next.Parent
		}
	}
	return nil
}
