package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindPredicates(t *testing.T) {
	if !MSC.IsCore() || !MME.IsCore() || RNC.IsCore() {
		t.Error("IsCore classification wrong")
	}
	if !RNC.IsController() || !BSC.IsController() || !ENodeB.IsController() || NodeB.IsController() {
		t.Error("IsController classification wrong")
	}
	if !NodeB.IsTower() || !BTS.IsTower() || !ENodeB.IsTower() || RNC.IsTower() {
		t.Error("IsTower classification wrong")
	}
}

func TestStringers(t *testing.T) {
	if UMTS.String() != "UMTS" || GSM.String() != "GSM" || LTE.String() != "LTE" {
		t.Error("Technology String wrong")
	}
	if RNC.String() != "RNC" || ENodeB.String() != "eNodeB" {
		t.Error("Kind String wrong")
	}
	if TerrainUrban.String() != "urban" || TrafficVenue.String() != "venue" {
		t.Error("Terrain/TrafficProfile String wrong")
	}
	if Technology(99).String() == "" || Kind(99).String() == "" {
		t.Error("out-of-range stringers must not be empty")
	}
}

func TestDistanceKm(t *testing.T) {
	// New York ↔ Los Angeles ≈ 3936 km.
	ny := GeoPoint{40.7128, -74.0060}
	la := GeoPoint{34.0522, -118.2437}
	d := DistanceKm(ny, la)
	if d < 3900 || d > 3980 {
		t.Errorf("NY-LA distance = %v km, want ~3936", d)
	}
	if DistanceKm(ny, ny) != 0 {
		t.Error("distance to self must be 0")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := GeoPoint{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := GeoPoint{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipForCell(t *testing.T) {
	z1 := ZipForCell(Northeast, 5)
	z2 := ZipForCell(Southeast, 5)
	if z1 == z2 {
		t.Error("different regions must yield different zips")
	}
	if len(z1) != 5 {
		t.Errorf("zip %q not 5 digits", z1)
	}
	if ZipForCell(Northeast, 5) != z1 {
		t.Error("zips must be deterministic")
	}
}

func TestRegionFoliageShape(t *testing.T) {
	if RegionFoliage(Northeast) <= RegionFoliage(Southeast) {
		t.Error("Northeast must have higher foliage exposure than Southeast (paper Fig. 3)")
	}
}

func TestNetworkAddValidation(t *testing.T) {
	n := NewNetwork()
	n.Add(&Element{ID: "m1", Kind: MSC})
	for _, bad := range []*Element{
		{ID: "", Kind: RNC},
		{ID: "m1", Kind: MSC},                 // duplicate
		{ID: "r1", Kind: RNC, Parent: "nope"}, // unknown parent
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%+v) should panic", bad)
				}
			}()
			n.Add(bad)
		}()
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := DefaultTopologyConfig()
	cfg.Regions = []Region{Northeast}
	a := Build(cfg)
	b := Build(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	aIDs, bIDs := a.IDs(), b.IDs()
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			t.Fatalf("ID order differs at %d: %q vs %q", i, aIDs[i], bIDs[i])
		}
		ea, eb := a.MustElement(aIDs[i]), b.MustElement(bIDs[i])
		if ea.Location != eb.Location || ea.Config != eb.Config {
			t.Fatalf("element %q differs between builds", aIDs[i])
		}
	}
	cfg.Seed = 2
	c := Build(cfg)
	same := true
	for i, id := range c.IDs() {
		if a.MustElement(aIDs[i]).Location != c.MustElement(id).Location {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placement")
	}
}

func TestBuildStructure(t *testing.T) {
	net := Build(DefaultTopologyConfig())
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	rncs := net.OfKind(RNC)
	if len(rncs) != 4*len(Regions()) {
		t.Errorf("RNC count = %d, want %d", len(rncs), 4*len(Regions()))
	}
	// Every RNC has the configured number of NodeB children.
	for _, rnc := range rncs {
		kids := net.Children(rnc)
		if len(kids) != 12 {
			t.Errorf("RNC %q has %d children, want 12", rnc, len(kids))
		}
		for _, kid := range kids {
			if net.MustElement(kid).Kind != NodeB {
				t.Errorf("RNC child %q is %s, want NodeB", kid, net.MustElement(kid).Kind)
			}
		}
	}
	// Descendants of an RNC include towers and their cells.
	desc := net.Descendants(rncs[0])
	if len(desc) != 12+12*3 {
		t.Errorf("RNC descendants = %d, want 48", len(desc))
	}
	// Ancestors of a cell climb to the core.
	cells := net.OfKind(Cell)
	anc := net.Ancestors(cells[0])
	if len(anc) < 2 {
		t.Errorf("cell ancestors = %v, want tower+controller+core chain", anc)
	}
}

func TestBuildRegionalFoliage(t *testing.T) {
	net := Build(DefaultTopologyConfig())
	neMean, seMean := 0.0, 0.0
	ne := net.InRegion(Northeast)
	se := net.InRegion(Southeast)
	for _, id := range ne {
		neMean += net.MustElement(id).FoliageExposure
	}
	for _, id := range se {
		seMean += net.MustElement(id).FoliageExposure
	}
	neMean /= float64(len(ne))
	seMean /= float64(len(se))
	if neMean <= seMean*2 {
		t.Errorf("NE foliage %v not clearly above SE %v", neMean, seMean)
	}
}

func TestSiblingsAndSameZip(t *testing.T) {
	net := Build(DefaultTopologyConfig())
	nbs := net.OfKind(NodeB)
	sibs := net.Siblings(nbs[0])
	if len(sibs) != 11 {
		t.Errorf("NodeB siblings = %d, want 11", len(sibs))
	}
	for _, s := range sibs {
		if net.MustElement(s).Parent != net.MustElement(nbs[0]).Parent {
			t.Error("sibling with different parent")
		}
	}
	// eNodeBs are generated in same-zip groups of four.
	enbs := net.OfKind(ENodeB)
	var found bool
	for _, e := range enbs {
		if len(net.SameZip(e)) >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no eNodeB has same-zip peers; zip grouping broken")
	}
	// Core element with no parent has no siblings.
	if s := net.Siblings(net.OfKind(MSC)[0]); s != nil {
		t.Errorf("MSC siblings = %v, want nil", s)
	}
}

func TestCouplingWeights(t *testing.T) {
	net := Build(DefaultTopologyConfig())
	nbs := net.OfKind(NodeB)
	study := nbs[0]
	w := net.CouplingWeights(study, 0.6)
	sibs := net.Siblings(study)
	if len(w) != len(sibs) {
		t.Fatalf("coupling covers %d elements, want all %d siblings", len(w), len(sibs))
	}
	center := net.MustElement(study).Location
	for _, s := range sibs {
		ws, ok := w[s]
		if !ok {
			t.Fatalf("sibling %q missing from coupling map", s)
		}
		if ws <= 0 || ws > 0.6 {
			t.Errorf("weight for %q = %v, want in (0, strength]", s, ws)
		}
	}
	// Weights decay with distance: the nearest sibling couples at least as
	// strongly as the farthest.
	near, far := sibs[0], sibs[0]
	for _, s := range sibs[1:] {
		d := DistanceKm(center, net.MustElement(s).Location)
		if d < DistanceKm(center, net.MustElement(near).Location) {
			near = s
		}
		if d > DistanceKm(center, net.MustElement(far).Location) {
			far = s
		}
	}
	if w[near] < w[far] {
		t.Errorf("near sibling weight %v below far sibling weight %v", w[near], w[far])
	}
	// Strength scales linearly and clamps to [0, 1].
	w2 := net.CouplingWeights(study, 0.3)
	if math.Abs(w2[near]-w[near]/2) > 1e-12 {
		t.Errorf("strength 0.3 weight %v not half of strength 0.6 weight %v", w2[near], w[near])
	}
	if over := net.CouplingWeights(study, 5); over[near] > 1 {
		t.Errorf("weight %v exceeds 1 despite clamping", over[near])
	}
	if net.CouplingWeights(study, 0) != nil {
		t.Error("strength 0 must yield no coupling")
	}
	// Core elements have no siblings, hence no coupling.
	if net.CouplingWeights(net.OfKind(MSC)[0], 0.5) != nil {
		t.Error("element without siblings must yield no coupling")
	}
	// Determinism: identical calls yield identical maps.
	w3 := net.CouplingWeights(study, 0.6)
	for k, v := range w {
		if w3[k] != v {
			t.Errorf("coupling weight for %q differs across calls: %v vs %v", k, v, w3[k])
		}
	}
}

func TestWithinKmSorted(t *testing.T) {
	net := Build(DefaultTopologyConfig())
	nbs := net.OfKind(NodeB)
	within := net.WithinKm(nbs[0], 500)
	if len(within) == 0 {
		t.Fatal("no elements within 500km of a NodeB")
	}
	center := net.MustElement(nbs[0]).Location
	last := -1.0
	for _, id := range within {
		d := DistanceKm(center, net.MustElement(id).Location)
		if d < last-1e-9 {
			t.Fatal("WithinKm not sorted by distance")
		}
		last = d
	}
}

func TestFilter(t *testing.T) {
	net := Build(DefaultTopologyConfig())
	son := net.Filter(func(e *Element) bool { return e.Config.SONEnabled && e.Kind == NodeB })
	if len(son) == 0 {
		t.Fatal("no SON-enabled NodeBs generated")
	}
	for _, id := range son {
		if !net.MustElement(id).Config.SONEnabled {
			t.Error("Filter returned non-matching element")
		}
	}
}

func TestSnapshotDiff(t *testing.T) {
	net := Build(DefaultTopologyConfig())
	at := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	s1 := net.Snapshot(at)
	// Mutate one element's software version and one parent.
	nb := net.OfKind(NodeB)[0]
	net.MustElement(nb).Config.SoftwareVersion = "NB9.9"
	s2 := net.Snapshot(at.Add(24 * time.Hour))
	diffs := Diff(s1, s2)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %v, want exactly 1", diffs)
	}
	if diffs[0].ID != nb || diffs[0].Field != "software" || diffs[0].After != "NB9.9" {
		t.Errorf("diff = %+v", diffs[0])
	}
	// Identical snapshots diff to nothing.
	if d := Diff(s2, s2); len(d) != 0 {
		t.Errorf("self-diff = %v, want empty", d)
	}
}

func TestSnapshotPresenceDiff(t *testing.T) {
	a := &ConfigSnapshot{Entries: map[string]SnapshotEntry{"x": {}}}
	b := &ConfigSnapshot{Entries: map[string]SnapshotEntry{"y": {}}}
	diffs := Diff(a, b)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v", diffs)
	}
	for _, d := range diffs {
		if d.Field != "presence" {
			t.Errorf("unexpected field %q", d.Field)
		}
	}
}

func TestValidateCatchesBadTopology(t *testing.T) {
	n := NewNetwork()
	n.Add(&Element{ID: "nb-root", Kind: NodeB}) // tower at root: fine for Add...
	n.Add(&Element{ID: "cell-1", Kind: Cell, Parent: "nb-root"})
	n.Add(&Element{ID: "nb-bad", Kind: NodeB, Parent: "cell-1"}) // tower under cell
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted a tower parented to a cell")
	}
}

func TestRegionCenterUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegionCenter(Region("Atlantis"))
}
