package figures

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/extfactor"
	"repro/internal/gen"
	"repro/internal/kpi"
	"repro/internal/netsim"
	"repro/internal/timeseries"
)

// assess runs study-only and Litmus on one study element and returns both
// verdicts; the figure captions of §3.1 and §5 contrast exactly these
// two readings.
func assess(study timeseries.Series, controls *timeseries.Panel, changeAt time.Time, metric kpi.KPI) (Verdicts, error) {
	so, err := core.StudyOnly(study, changeAt, metric, core.DefaultAlpha)
	if err != nil {
		return nil, err
	}
	assessor := core.MustNewAssessor(core.Config{EffectFloor: 0.004})
	lit, err := assessor.AssessElement("study", study, controls, changeAt, metric)
	if err != nil {
		return nil, err
	}
	return Verdicts{"study-only": so, "litmus": lit.Verdict}, nil
}

// Figure07 reproduces Fig. 7: the three intuition scenarios where
// study-group-only assessment misreads the outcome and the study/control
// dependency reads it correctly. The three sub-figures are emitted as one
// figure with grouped series; the verdicts carry keys
// "a-study-only"/"a-litmus" through "c-...".
func Figure07(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	towers := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.West
	})
	study := towers[0]
	controls := net.Siblings(study)
	ix := timeseries.NewIndex(epoch, 6*time.Hour, 28*4)
	changeAt := epoch.Add(14 * 24 * time.Hour)

	fig := Figure{
		ID:       "7",
		Title:    "Study-only vs study/control readings under external factors",
		KPI:      kpi.VoiceRetainability,
		ChangeAt: changeAt,
		Verdicts: Verdicts{},
		Notes:    "(a) weather degrades both but the change helps: relative improvement; (b) traffic change degrades both equally: no relative change; (c) an upstream change improves both but the study lags: relative degradation.",
	}

	type scenario struct {
		key    string
		factor float64 // common-mode stress after the change
		studyQ float64 // true change effect at the study element
	}
	scenarios := []scenario{
		{key: "a", factor: 2.5, studyQ: 1.4},   // weather + helpful change
		{key: "b", factor: 2.0, studyQ: 0},     // traffic pattern change only
		{key: "c", factor: -2.5, studyQ: -1.4}, // upstream improvement, study lags
	}
	for _, sc := range scenarios {
		factor := extfactor.RegionWeatherEvent{
			Kind: extfactor.Thunderstorm, Label: "scenario-" + sc.key, Region: netsim.West,
			Start: changeAt, End: ix.End(), Severity: sc.factor,
		}
		over := gen.Config{Factors: extfactor.Stack{factor}, RegionalNoiseSD: 0.5}
		if sc.studyQ != 0 {
			over.Effects = []gen.Effect{gen.EffectOn("change-"+sc.key, []string{study}, changeAt, time.Time{}, sc.studyQ)}
		}
		// Pin the study element's factor response to the control average
		// so the scenario is exactly the figure's.
		over.SensitivityOverrides = map[string]float64{study: 1}
		g := gen.New(net, genCfg(cfg, ix, over))

		studySeries := g.Series(study, kpi.VoiceRetainability)
		controlPanel := g.Panel(kpi.VoiceRetainability, controls)
		fig.Series = append(fig.Series,
			Series{Name: sc.key + "-study", Group: "study", Values: studySeries},
			Series{Name: sc.key + "-control-median", Group: "control", Values: controlPanel.CrossSectionMedian()},
		)
		v, err := assess(studySeries, controlPanel, changeAt, kpi.VoiceRetainability)
		if err != nil {
			return Figure{}, fmt.Errorf("figures: scenario %s: %w", sc.key, err)
		}
		fig.Verdicts[sc.key+"-study-only"] = v["study-only"]
		fig.Verdicts[sc.key+"-litmus"] = v["litmus"]
	}
	return fig, nil
}

// Figure08 reproduces Fig. 8 (§5.1): a feature activation at an RNC that
// subtly but persistently increases the dropped voice call ratio at the
// study RNC while the control RNCs stay flat; Litmus flags the
// degradation.
func Figure08(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	rncs := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.RNC && e.Region == netsim.Northeast
	})
	study := rncs[0]
	controls := rncs[1:]
	ix := timeseries.NewIndex(epoch, 6*time.Hour, 28*4)
	changeAt := epoch.Add(14 * 24 * time.Hour)
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Effects: []gen.Effect{gen.EffectOn("feature-activation", []string{study}, changeAt, time.Time{}, -0.9)},
	}))
	studySeries := g.Series(study, kpi.DroppedCallRatio)
	controlPanel := g.Panel(kpi.DroppedCallRatio, controls)
	v, err := assess(studySeries, controlPanel, changeAt, kpi.DroppedCallRatio)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:       "8",
		Title:    "Feature activation at an RNC: subtle dropped-call increase (§5.1)",
		KPI:      kpi.DroppedCallRatio,
		ChangeAt: changeAt,
		Verdicts: v,
		Notes:    "The study RNC's dropped-call ratio steps up after activation; control RNCs are unchanged. Litmus confirms the increase is caused by the feature.",
	}
	fig.Series = append(fig.Series, Series{Name: "study-rnc", Group: "study", Values: studySeries})
	for i, id := range controls {
		fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("control-rnc-%d", i+1), Group: "control", Values: g.Series(id, kpi.DroppedCallRatio)})
	}
	return fig, nil
}

// Figure09 reproduces Fig. 9 (§5.2): configuration changes at
// Northeastern MSCs applied in Fall — leaves falling improve voice
// retainability at study and control MSCs alike (with different
// intensities), so the apparent improvement is foliage, not the change.
func Figure09(cfg Config) (Figure, error) {
	topo := netsim.DefaultTopologyConfig()
	topo.Seed = cfg.seed()
	topo.MSCsPerRegion = 8
	net := netsim.Build(topo)
	mscs := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.MSC && e.Region == netsim.Northeast
	})
	study := mscs[0]
	controls := mscs[1:]
	// Fall window: leaves coming off from late September.
	fallEpoch := time.Date(2012, 9, 10, 0, 0, 0, 0, time.UTC)
	ix := timeseries.NewIndex(fallEpoch, 6*time.Hour, 28*4)
	changeAt := fallEpoch.Add(14 * 24 * time.Hour)
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Factors:         extfactor.Stack{extfactor.Foliage{Amplitude: 4.5}},
		RegionalNoiseSD: 0.15,
		Effects:         []gen.Effect{gen.EffectOn("msc-config-change", []string{study}, changeAt, time.Time{}, 0)},
	}))
	studySeries := g.Series(study, kpi.VoiceRetainability)
	controlPanel := g.Panel(kpi.VoiceRetainability, controls)
	v, err := assess(studySeries, controlPanel, changeAt, kpi.VoiceRetainability)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:       "9",
		Title:    "MSC config change during Fall foliage recovery (§5.2)",
		KPI:      kpi.VoiceRetainability,
		ChangeAt: changeAt,
		Verdicts: v,
		Notes:    "Voice retainability improves at study and control MSCs as leaves fall; Litmus reports no relative change — the improvement is foliage, not the change.",
	}
	fig.Series = append(fig.Series, Series{Name: "study-msc", Group: "study", Values: studySeries})
	for i, id := range controls {
		fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("control-msc-%d", i+1), Group: "control", Values: g.Series(id, kpi.VoiceRetainability)})
	}
	return fig, nil
}

// Figure10 reproduces Fig. 10 (§5.3): hurricane Sandy degrades every
// Northeastern tower, but the SON-enabled study towers (automatic
// neighbor discovery and load balancing) hold up relatively better than
// the non-SON controls; Litmus reports a relative improvement.
func Figure10(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	son := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.Northeast && e.Config.SONEnabled
	})
	nonSON := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.Northeast && !e.Config.SONEnabled
	})
	if len(son) == 0 || len(nonSON) < 4 {
		return Figure{}, fmt.Errorf("figures: not enough SON/non-SON towers (have %d/%d)", len(son), len(nonSON))
	}
	study := son[0]
	// Hurricane window: late October 2012.
	sandyEpoch := time.Date(2012, 10, 15, 0, 0, 0, 0, time.UTC)
	ix := timeseries.NewIndex(sandyEpoch, 6*time.Hour, 28*4)
	landfall := sandyEpoch.Add(14 * 24 * time.Hour)
	sandy := extfactor.WeatherEvent{
		Kind: extfactor.Hurricane, Label: "hurricane-sandy",
		Center: netsim.RegionCenter(netsim.Northeast), RadiusKm: 600,
		Start: landfall, End: landfall.Add(12 * 24 * time.Hour),
		Severity: 6, Ramp: 36 * time.Hour,
	}
	// SON towers mitigate part of the hurricane stress from landfall on —
	// the deployed self-optimization reacting to outages and congestion.
	sonMitigation := gen.Effect{
		Label: "son-mitigation",
		Match: func(e *netsim.Element) bool { return e.Config.SONEnabled },
		Start: landfall, Quality: 2.5,
	}
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Factors: extfactor.Stack{sandy},
		Effects: []gen.Effect{sonMitigation},
	}))

	fig := Figure{
		ID:       "10",
		Title:    "SON towers vs non-SON towers through hurricane Sandy (§5.3)",
		KPI:      kpi.VoiceAccessibility,
		ChangeAt: landfall,
		Verdicts: Verdicts{},
		Notes:    "Both groups degrade when Sandy hits; the SON-enabled group stays relatively better on accessibility and retainability — Litmus reports relative improvement, motivating the network-wide SON rollout.",
	}
	for _, metric := range []kpi.KPI{kpi.VoiceAccessibility, kpi.VoiceRetainability} {
		studySeries := g.Series(study, metric)
		controlPanel := g.Panel(metric, nonSON)
		fig.Series = append(fig.Series,
			Series{Name: metric.String() + "-study-son", Group: "study", Values: studySeries},
			Series{Name: metric.String() + "-control-median", Group: "control", Values: controlPanel.CrossSectionMedian()},
		)
		v, err := assess(studySeries, controlPanel, landfall, metric)
		if err != nil {
			return Figure{}, err
		}
		fig.Verdicts[metric.String()+"-study-only"] = v["study-only"]
		fig.Verdicts[metric.String()+"-litmus"] = v["litmus"]
	}
	return fig, nil
}

// Figure11 reproduces Fig. 11 (§5.4): a parameter change at a few RNCs
// assessed over a holiday period — data retainability rises at study and
// control RNCs alike, so the apparent improvement is the holiday, not
// the change. Litmus labels it no impact; the change was not rolled out.
func Figure11(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	rncs := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.RNC && e.Region == netsim.Southeast
	})
	study := rncs[0]
	controls := rncs[1:]
	ix := timeseries.NewIndex(epoch, 6*time.Hour, 36*4)
	changeAt := epoch.Add(12 * 24 * time.Hour)
	holiday := extfactor.TrafficEvent{
		Kind: extfactor.Holiday, Label: "holiday-season", Region: netsim.Southeast,
		Start: changeAt.Add(2 * 24 * time.Hour), End: ix.End(),
		// The holiday lowers business-hour load, improving retainability:
		// modeled as a load reduction plus a direct stress relief.
		LoadMult: 0.7, Ramp: 24 * time.Hour,
	}
	relief := extfactor.RegionWeatherEvent{
		Kind: extfactor.Rain /* placeholder kind; label tells the story */, Label: "holiday-relief",
		Region: netsim.Southeast, Start: changeAt.Add(2 * 24 * time.Hour), End: ix.End(),
		Severity: -1.8, Ramp: 24 * time.Hour,
	}
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Factors: extfactor.Stack{holiday, relief},
		Effects: []gen.Effect{gen.EffectOn("cell-change-parameter", []string{study}, changeAt, time.Time{}, 0)},
	}))
	studySeries := g.Series(study, kpi.DataRetainability)
	controlPanel := g.Panel(kpi.DataRetainability, controls)
	v, err := assess(studySeries, controlPanel, changeAt, kpi.DataRetainability)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:       "11",
		Title:    "Parameter change assessed across a holiday (§5.4)",
		KPI:      kpi.DataRetainability,
		ChangeAt: changeAt,
		Verdicts: v,
		Notes:    "Data retainability rises at study and control RNCs during the holidays; Litmus reports no relative impact and the rollout was (correctly) withheld.",
	}
	fig.Series = append(fig.Series, Series{Name: "study-rnc", Group: "study", Values: studySeries})
	for i, id := range controls {
		fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("control-rnc-%d", i+1), Group: "control", Values: g.Series(id, kpi.DataRetainability)})
	}
	return fig, nil
}
