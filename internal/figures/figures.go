// Package figures regenerates the data behind every time-series figure of
// the paper (CoNEXT'13): the motivating examples of §1–2 (Figs. 1, 3–6),
// the intuition scenarios of §3.1 (Fig. 7), and the operational case
// studies of §5 (Figs. 8–11). Each generator returns a Figure — named
// series on a shared time grid plus the assessment verdicts where the
// figure's point is a verdict — and is deterministic in its seed.
package figures

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/extfactor"
	"repro/internal/gen"
	"repro/internal/kpi"
	"repro/internal/netsim"
	"repro/internal/timeseries"
)

// Series is one named line of a figure.
type Series struct {
	Name   string
	Values timeseries.Series
	// Group tags the series ("study", "control", or "" for single-series
	// figures).
	Group string
}

// Verdicts holds the algorithmic readings attached to a figure, keyed by
// a short label (e.g. "litmus", "study-only").
type Verdicts map[string]core.Verdict

// Figure is the regenerated data of one paper figure.
type Figure struct {
	// ID is the paper's figure number ("1", "3", ..., "11").
	ID string
	// Title describes the figure.
	Title string
	// KPI is the metric plotted.
	KPI kpi.KPI
	// Series are the plotted lines.
	Series []Series
	// ChangeAt is the change time marked in the figure (zero if none).
	ChangeAt time.Time
	// Verdicts are the assessment outcomes the figure's caption states.
	Verdicts Verdicts
	// Notes captures the qualitative claim the figure supports.
	Notes string
}

// epoch anchors figure timelines.
var epoch = time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)

// Config bundles shared knobs for the figure generators.
type Config struct {
	// Seed drives the synthetic worlds (default 21).
	Seed int64
}

// DefaultConfig returns the default figure configuration.
func DefaultConfig() Config { return Config{Seed: 21} }

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 21
	}
	return c.Seed
}

// All regenerates every figure.
func All(cfg Config) ([]Figure, error) {
	gens := []func(Config) (Figure, error){
		Figure01, Figure03, Figure04, Figure05, Figure06,
		Figure07, Figure08, Figure09, Figure10, Figure11,
	}
	out := make([]Figure, 0, len(gens))
	for _, g := range gens {
		f, err := g(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ByID regenerates one figure by its paper number.
func ByID(cfg Config, id string) (Figure, error) {
	all, err := All(cfg)
	if err != nil {
		return Figure{}, err
	}
	for _, f := range all {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("figures: no figure %q (figure 2 is the architecture diagram; see internal/netsim)", id)
}

// smallWorld builds the compact network used by most figures.
func smallWorld(seed int64) *netsim.Network {
	topo := netsim.DefaultTopologyConfig()
	topo.Seed = seed
	return netsim.Build(topo)
}

// Figure01 reproduces Fig. 1: a configuration change whose assessment
// window is hit by extremely strong winds — the dropped voice call ratio
// spikes from the weather, not the change.
func Figure01(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	towers := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.Midwest
	})
	study := towers[0]
	ix := timeseries.NewIndex(epoch, 6*time.Hour, 28*4)
	changeAt := epoch.Add(14 * 24 * time.Hour)

	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Factors: extfactor.Stack{extfactor.RegionWeatherEvent{
			Kind: extfactor.StrongWind, Label: "strong-winds", Region: netsim.Midwest,
			Start: changeAt.Add(-24 * time.Hour), End: changeAt.Add(5 * 24 * time.Hour),
			Severity: 3.5, Ramp: 12 * time.Hour,
		}},
		// The change itself is benign.
		Effects: []gen.Effect{gen.EffectOn("config-change", []string{study}, changeAt, time.Time{}, 0)},
	}))
	return Figure{
		ID:    "1",
		Title: "Config change co-occurring with strong winds (dropped voice call ratio)",
		KPI:   kpi.DroppedCallRatio,
		Series: []Series{
			{Name: study, Group: "study", Values: g.Series(study, kpi.DroppedCallRatio)},
		},
		ChangeAt: changeAt,
		Notes:    "The spike after the change time is the wind, not the change; assessing without weather knowledge reaches the wrong conclusion.",
	}, nil
}

// Figure03 reproduces Fig. 3: two years of daily voice retainability for
// Northeastern towers showing foliage seasonality (dip April–August) on
// top of the carrier's secular improvement trend, with a Southeastern
// tower as the flat contrast.
func Figure03(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	ne := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.Northeast
	})[0]
	se := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.Southeast
	})[0]
	ix := timeseries.NewIndex(epoch, 24*time.Hour, 730)
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Factors:            extfactor.Stack{extfactor.Foliage{Amplitude: 1.6}},
		AnnualQualityTrend: 0.5,
	}))
	return Figure{
		ID:    "3",
		Title: "Two-year foliage seasonality in Northeastern voice retainability",
		KPI:   kpi.VoiceRetainability,
		Series: []Series{
			{Name: "northeast-tower", Group: "study", Values: g.Series(ne, kpi.VoiceRetainability)},
			{Name: "southeast-tower", Group: "control", Values: g.Series(se, kpi.VoiceRetainability)},
		},
		Notes: "Northeast dips April–August both years (leaves budding) and recovers into winter, atop a rising trend; the Southeast shows no seasonality.",
	}, nil
}

// Figure04 reproduces Fig. 4: severe storms and damaging hail degrading
// voice accessibility across multiple RNCs at once.
func Figure04(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	rncs := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.RNC && e.Region == netsim.Southwest
	})
	ix := timeseries.NewIndex(epoch, 24*time.Hour, 40)
	stormStart := epoch.Add(18 * 24 * time.Hour)
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Factors: extfactor.Stack{extfactor.RegionWeatherEvent{
			Kind: extfactor.Hail, Label: "severe-storms-tornado", Region: netsim.Southwest,
			Start: stormStart, End: stormStart.Add(4 * 24 * time.Hour),
			Severity: 4, Ramp: 12 * time.Hour,
		}},
	}))
	fig := Figure{
		ID:    "4",
		Title: "Storm/hail degradation across multiple RNCs (voice accessibility)",
		KPI:   kpi.VoiceAccessibility,
		Notes: "Every RNC in the region dips together during the storm window — external factors induce correlated impact across elements.",
	}
	for _, id := range rncs {
		fig.Series = append(fig.Series, Series{Name: id, Group: "study", Values: g.Series(id, kpi.VoiceAccessibility)})
	}
	return fig, nil
}

// Figure05 reproduces Fig. 5: a big event multiplying voice call volume
// and dragging voice retainability down at the venue's towers.
func Figure05(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	venue := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.West
	})[0]
	ix := timeseries.NewIndex(epoch, time.Hour, 7*24)
	evStart := epoch.Add(4 * 24 * time.Hour)
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Factors: extfactor.Stack{extfactor.TrafficEvent{
			Kind: extfactor.BigEvent, Label: "stadium-game",
			Center: net.MustElement(venue).Location, RadiusKm: 20,
			Start: evStart, End: evStart.Add(6 * time.Hour),
			LoadMult: 5, CongestionStressPerLoad: 0.8, Ramp: time.Hour,
		}},
	}))
	return Figure{
		ID:    "5",
		Title: "Big event: voice call volume up, retainability down",
		KPI:   kpi.VoiceRetainability,
		Series: []Series{
			{Name: "voice-retainability", Group: "study", Values: g.Series(venue, kpi.VoiceRetainability)},
			{Name: "voice-call-volume", Group: "study", Values: g.Series(venue, kpi.VoiceCallVolume)},
		},
		ChangeAt: evStart,
		Notes:    "During the event the call volume multiplies and retainability drops — load changes alone move the KPIs.",
	}, nil
}

// Figure06 reproduces Fig. 6: a software upgrade at an upstream RNC
// improving voice retainability at the cell towers it serves.
func Figure06(cfg Config) (Figure, error) {
	net := smallWorld(cfg.seed())
	rnc := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.RNC && e.Region == netsim.Southeast
	})[0]
	towers := net.Children(rnc)[:5]
	ix := timeseries.NewIndex(epoch, 24*time.Hour, 20)
	upgradeAt := epoch.Add(10 * 24 * time.Hour)
	scope := append([]string{rnc}, net.Descendants(rnc)...)
	g := gen.New(net, genCfg(cfg, ix, gen.Config{
		Effects: []gen.Effect{gen.EffectOn("rnc-software-upgrade", scope, upgradeAt, time.Time{}, 1.8)},
	}))
	fig := Figure{
		ID:       "6",
		Title:    "Upstream RNC software upgrade improves its towers (voice retainability)",
		KPI:      kpi.VoiceRetainability,
		ChangeAt: upgradeAt,
		Notes:    "All towers under the upgraded RNC improve together; a tower-level change assessed in isolation would wrongly take the credit.",
	}
	for i, id := range towers {
		fig.Series = append(fig.Series, Series{Name: fmt.Sprintf("cell-tower-%d", i+1), Group: "study", Values: g.Series(id, kpi.VoiceRetainability)})
	}
	return fig, nil
}

// genCfg merges figure-specific generator settings over the defaults.
func genCfg(cfg Config, ix timeseries.Index, over gen.Config) gen.Config {
	g := gen.DefaultConfig(ix)
	g.Seed = cfg.seed()
	g.RegionalNoiseSD = 0.35
	g.ElementNoiseSD = 0.05
	g.AnnualQualityTrend = over.AnnualQualityTrend
	g.Factors = over.Factors
	g.Effects = over.Effects
	if over.RegionalNoiseSD != 0 {
		g.RegionalNoiseSD = over.RegionalNoiseSD
	}
	if over.SensitivityOverrides != nil {
		g.SensitivityOverrides = over.SensitivityOverrides
	}
	g.FailureScale = 2
	return g
}
