package figures

import (
	"testing"
	"time"

	"repro/internal/kpi"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

func windowMean(s timeseries.Series, from, to time.Time) float64 {
	return stats.Mean(s.Window(from, to).CleanValues())
}

func TestAllFiguresGenerate(t *testing.T) {
	figs, err := All(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"1", "3", "4", "5", "6", "7", "8", "9", "10", "11"}
	if len(figs) != len(wantIDs) {
		t.Fatalf("got %d figures, want %d", len(figs), len(wantIDs))
	}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d ID = %q, want %q", i, f.ID, wantIDs[i])
		}
		if len(f.Series) == 0 {
			t.Errorf("figure %s has no series", f.ID)
		}
		if f.Title == "" || f.Notes == "" {
			t.Errorf("figure %s missing title or notes", f.ID)
		}
		for _, s := range f.Series {
			if s.Values.Len() == 0 {
				t.Errorf("figure %s series %q empty", f.ID, s.Name)
			}
		}
	}
}

func TestByID(t *testing.T) {
	f, err := ByID(DefaultConfig(), "3")
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "3" {
		t.Errorf("ByID returned figure %q", f.ID)
	}
	if _, err := ByID(DefaultConfig(), "2"); err == nil {
		t.Error("figure 2 (architecture diagram) should not be generatable")
	}
}

func TestFigure01WindSpike(t *testing.T) {
	f, err := Figure01(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0].Values
	calm := windowMean(s, epoch, f.ChangeAt.Add(-2*24*time.Hour))
	windy := windowMean(s, f.ChangeAt, f.ChangeAt.Add(4*24*time.Hour))
	if windy < calm+0.01 {
		t.Errorf("dropped-call ratio during winds = %v, want clearly above calm %v", windy, calm)
	}
}

func TestFigure03SeasonalShape(t *testing.T) {
	f, err := Figure03(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ne := f.Series[0].Values
	se := f.Series[1].Values
	for year := 0; year < 2; year++ {
		y := epoch.AddDate(year, 0, 0)
		winter := windowMean(ne, y, y.AddDate(0, 2, 0))
		summer := windowMean(ne, y.AddDate(0, 6, 0), y.AddDate(0, 8, 0))
		if winter-summer < 0.008 {
			t.Errorf("year %d: NE seasonal dip = %v, want visible", year+1, winter-summer)
		}
		seWinter := windowMean(se, y, y.AddDate(0, 2, 0))
		seSummer := windowMean(se, y.AddDate(0, 6, 0), y.AddDate(0, 8, 0))
		if d := seWinter - seSummer; d > 0.006 {
			t.Errorf("year %d: SE shows seasonality (%v) but should not", year+1, d)
		}
	}
	// Secular trend: the second winter beats the first.
	w1 := windowMean(ne, epoch, epoch.AddDate(0, 2, 0))
	w2 := windowMean(ne, epoch.AddDate(1, 0, 0), epoch.AddDate(1, 2, 0))
	if w2 <= w1 {
		t.Errorf("no rising trend: winter1 %v, winter2 %v", w1, w2)
	}
}

func TestFigure04CorrelatedStormDip(t *testing.T) {
	f, err := Figure04(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) < 3 {
		t.Fatalf("want multiple RNCs, got %d", len(f.Series))
	}
	stormStart := epoch.Add(18 * 24 * time.Hour)
	for _, s := range f.Series {
		before := windowMean(s.Values, epoch, stormStart)
		during := windowMean(s.Values, stormStart.Add(24*time.Hour), stormStart.Add(3*24*time.Hour))
		if during >= before-0.01 {
			t.Errorf("RNC %s: storm dip missing (before %v, during %v)", s.Name, before, during)
		}
	}
}

func TestFigure05EventVolumeAndRetainability(t *testing.T) {
	f, err := Figure05(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Series[0].Values
	vol := f.Series[1].Values
	evStart := f.ChangeAt
	evEnd := evStart.Add(6 * time.Hour)
	volBefore := windowMean(vol, evStart.Add(-24*time.Hour), evStart)
	volDuring := windowMean(vol, evStart, evEnd)
	if volDuring < 2.5*volBefore {
		t.Errorf("event volume %v not a multiple of baseline %v", volDuring, volBefore)
	}
	retBefore := windowMean(ret, evStart.Add(-24*time.Hour), evStart)
	retDuring := windowMean(ret, evStart, evEnd)
	if retDuring >= retBefore {
		t.Errorf("retainability did not drop during event: %v -> %v", retBefore, retDuring)
	}
}

func TestFigure06UpstreamImprovement(t *testing.T) {
	f, err := Figure06(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		before := windowMean(s.Values, epoch, f.ChangeAt)
		after := windowMean(s.Values, f.ChangeAt, f.ChangeAt.Add(10*24*time.Hour))
		if after < before+0.008 {
			t.Errorf("%s: upgrade improvement missing (%v -> %v)", s.Name, before, after)
		}
	}
}

func TestFigure07Verdicts(t *testing.T) {
	f, err := Figure07(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// (a): study-only reads the weather as degradation; Litmus reads the
	// change as relative improvement.
	if got := f.Verdicts["a-study-only"].Impact; got != kpi.Degradation {
		t.Errorf("scenario a study-only = %v, want degradation", got)
	}
	if got := f.Verdicts["a-litmus"].Impact; got != kpi.Improvement {
		t.Errorf("scenario a litmus = %v, want relative improvement", got)
	}
	// (b): both degrade equally → study-only degradation, Litmus no change.
	if got := f.Verdicts["b-study-only"].Impact; got != kpi.Degradation {
		t.Errorf("scenario b study-only = %v, want degradation", got)
	}
	if got := f.Verdicts["b-litmus"].Impact; got != kpi.NoImpact {
		t.Errorf("scenario b litmus = %v, want no impact", got)
	}
	// (c): both improve, study lags → study-only improvement, Litmus
	// degradation.
	if got := f.Verdicts["c-study-only"].Impact; got != kpi.Improvement {
		t.Errorf("scenario c study-only = %v, want improvement", got)
	}
	if got := f.Verdicts["c-litmus"].Impact; got != kpi.Degradation {
		t.Errorf("scenario c litmus = %v, want relative degradation", got)
	}
}

func TestFigure08FeatureDegradationDetected(t *testing.T) {
	f, err := Figure08(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Verdicts["litmus"].Impact; got != kpi.Degradation {
		t.Errorf("litmus = %v, want degradation (dropped calls increased)", got)
	}
	// The controls stay flat: their median dropped-call ratio moves less
	// than the study's.
	study := f.Series[0].Values
	before, after := study.SplitAt(f.ChangeAt)
	studyShift := stats.Median(after.CleanValues()) - stats.Median(before.CleanValues())
	if studyShift < 0.005 {
		t.Errorf("study dropped-call shift = %v, want visible increase", studyShift)
	}
}

func TestFigure09FoliageNoRelativeChange(t *testing.T) {
	f, err := Figure09(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Verdicts["study-only"].Impact; got != kpi.Improvement {
		t.Errorf("study-only = %v, want (spurious) improvement from foliage", got)
	}
	if got := f.Verdicts["litmus"].Impact; got != kpi.NoImpact {
		t.Errorf("litmus = %v, want no relative change", got)
	}
}

func TestFigure10SandyRelativeImprovement(t *testing.T) {
	f, err := Figure10(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{kpi.VoiceAccessibility.String(), kpi.VoiceRetainability.String()} {
		if got := f.Verdicts[metric+"-study-only"].Impact; got != kpi.Degradation {
			t.Errorf("%s study-only = %v, want absolute degradation from the hurricane", metric, got)
		}
		if got := f.Verdicts[metric+"-litmus"].Impact; got != kpi.Improvement {
			t.Errorf("%s litmus = %v, want relative improvement from SON", metric, got)
		}
	}
}

func TestFigure11HolidayNoImpact(t *testing.T) {
	f, err := Figure11(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Verdicts["study-only"].Impact; got != kpi.Improvement {
		t.Errorf("study-only = %v, want (spurious) improvement from the holiday", got)
	}
	if got := f.Verdicts["litmus"].Impact; got != kpi.NoImpact {
		t.Errorf("litmus = %v, want no relative impact", got)
	}
}

func TestFiguresDeterministic(t *testing.T) {
	a, err := Figure08(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure08(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	av, bv := a.Series[0].Values.Values, b.Series[0].Values.Values
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("figure data not deterministic")
		}
	}
	if a.Verdicts["litmus"] != b.Verdicts["litmus"] {
		t.Error("figure verdicts not deterministic")
	}
}
