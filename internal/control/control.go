// Package control implements Litmus' domain-knowledge-guided control
// group selection (CoNEXT'13 §3.3): predicates over element attributes —
// geographic (zip code, distance), topological (shared upstream
// elements), configuration (software version, vendor, model), terrain and
// traffic profile — composable into uni- or multi-variate selection
// rules, plus a Selector that applies them while excluding the change's
// causal impact scope.
package control

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Predicate decides whether a candidate element is an acceptable control
// for a study element.
type Predicate interface {
	// Name identifies the predicate in reports.
	Name() string
	// Matches reports whether candidate can control for study.
	Matches(study, candidate *netsim.Element) bool
}

// predicateFunc adapts a function to the Predicate interface.
type predicateFunc struct {
	name string
	fn   func(study, candidate *netsim.Element) bool
}

func (p predicateFunc) Name() string { return p.name }
func (p predicateFunc) Matches(s, c *netsim.Element) bool {
	return p.fn(s, c)
}

// NewPredicate builds a Predicate from a name and a match function.
func NewPredicate(name string, fn func(study, candidate *netsim.Element) bool) Predicate {
	return predicateFunc{name: name, fn: fn}
}

// SameKind requires the candidate to be the same element kind (NodeB with
// NodeB, RNC with RNC) — implicit in all of the paper's selections.
func SameKind() Predicate {
	return NewPredicate("same-kind", func(s, c *netsim.Element) bool { return s.Kind == c.Kind })
}

// SameTech requires the same radio access technology.
func SameTech() Predicate {
	return NewPredicate("same-technology", func(s, c *netsim.Element) bool { return s.Tech == c.Tech })
}

// SameZip requires the candidate to share the study element's zip code —
// the paper's geographic predicate for LTE (§4.2).
func SameZip() Predicate {
	return NewPredicate("same-zip", func(s, c *netsim.Element) bool { return s.ZipCode == c.ZipCode })
}

// SameRegion requires the same geographic region — the coarse predicate
// that keeps external factors (foliage, storms) common between groups.
func SameRegion() Predicate {
	return NewPredicate("same-region", func(s, c *netsim.Element) bool { return s.Region == c.Region })
}

// WithinKm requires the candidate within the given great-circle distance.
func WithinKm(radius float64) Predicate {
	return NewPredicate(fmt.Sprintf("within-%.0fkm", radius), func(s, c *netsim.Element) bool {
		return netsim.DistanceKm(s.Location, c.Location) <= radius
	})
}

// SameParent requires a shared direct upstream element — the paper's
// topological predicate (NodeBs under the same RNC, §4.2).
func SameParent() Predicate {
	return NewPredicate("same-parent", func(s, c *netsim.Element) bool {
		return s.Parent != "" && s.Parent == c.Parent
	})
}

// SameSoftware requires matching software versions (paper §3.3 example:
// upstream RNCs with same OS).
func SameSoftware() Predicate {
	return NewPredicate("same-software", func(s, c *netsim.Element) bool {
		return s.Config.SoftwareVersion == c.Config.SoftwareVersion
	})
}

// SameVendor requires matching equipment vendors.
func SameVendor() Predicate {
	return NewPredicate("same-vendor", func(s, c *netsim.Element) bool {
		return s.Config.Vendor == c.Config.Vendor
	})
}

// SameModel requires matching equipment models.
func SameModel() Predicate {
	return NewPredicate("same-model", func(s, c *netsim.Element) bool {
		return s.Config.EquipmentModel == c.Config.EquipmentModel
	})
}

// SameTerrain requires matching terrain classes (paper attribute 4).
func SameTerrain() Predicate {
	return NewPredicate("same-terrain", func(s, c *netsim.Element) bool { return s.Terrain == c.Terrain })
}

// SameTrafficProfile requires matching traffic profiles (paper attribute
// 5) — the guard against the business-vs-lake bad-predictor problem
// (§3.2).
func SameTrafficProfile() Predicate {
	return NewPredicate("same-traffic-profile", func(s, c *netsim.Element) bool { return s.Traffic == c.Traffic })
}

// SONState requires the candidate's SON feature flag to equal enabled —
// used in the hurricane Sandy case study (§5.3) where the control group is
// the non-SON towers.
func SONState(enabled bool) Predicate {
	return NewPredicate(fmt.Sprintf("son=%t", enabled), func(_, c *netsim.Element) bool {
		return c.Config.SONEnabled == enabled
	})
}

// And composes predicates conjunctively (multi-variate predicates, §3.3).
func And(ps ...Predicate) Predicate {
	name := "and("
	for i, p := range ps {
		if i > 0 {
			name += ","
		}
		name += p.Name()
	}
	name += ")"
	return NewPredicate(name, func(s, c *netsim.Element) bool {
		for _, p := range ps {
			if !p.Matches(s, c) {
				return false
			}
		}
		return true
	})
}

// Or composes predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	name := "or("
	for i, p := range ps {
		if i > 0 {
			name += ","
		}
		name += p.Name()
	}
	name += ")"
	return NewPredicate(name, func(s, c *netsim.Element) bool {
		for _, p := range ps {
			if p.Matches(s, c) {
				return true
			}
		}
		return false
	})
}

// Not inverts a predicate.
func Not(p Predicate) Predicate {
	return NewPredicate("not("+p.Name()+")", func(s, c *netsim.Element) bool {
		return !p.Matches(s, c)
	})
}

// Selector selects a control group for a study group.
type Selector struct {
	// Net is the network to draw candidates from.
	Net *netsim.Network
	// Predicate must accept a candidate for at least one study element.
	Predicate Predicate
	// Exclude lists element IDs that may not appear in the control group
	// beyond the automatic exclusions (study group and its impact scope).
	Exclude []string
	// MinSize is the smallest acceptable control group (default 4): below
	// it the robust-regression benefit is lost (§3.3).
	MinSize int
	// MaxSize caps the group (default 100, the paper's "10s-100s, not the
	// whole network"); the nearest candidates by distance to the study
	// group are kept.
	MaxSize int
	// Obs is the optional observability scope: Select records a
	// control-select span plus candidate/selected counters into it. Nil
	// (the default) costs nothing and changes nothing.
	Obs *obs.Scope
}

// DefaultMinSize and DefaultMaxSize bound control group sizes per §3.3.
const (
	DefaultMinSize = 4
	DefaultMaxSize = 100
)

// Select returns the control group for the given study element IDs. The
// result is deterministic: candidates are ordered by mean distance to the
// study group with ID tie-breaks. It returns an error when fewer than
// MinSize candidates qualify.
func (s *Selector) Select(studyIDs []string) ([]string, error) {
	sc := s.Obs.Child(obs.SpanControlSelect)
	defer sc.End()
	if len(studyIDs) == 0 {
		return nil, fmt.Errorf("control: empty study group")
	}
	if s.Predicate == nil {
		return nil, fmt.Errorf("control: selector without predicate")
	}
	minSize := s.MinSize
	if minSize == 0 {
		minSize = DefaultMinSize
	}
	maxSize := s.MaxSize
	if maxSize == 0 {
		maxSize = DefaultMaxSize
	}

	excluded := make(map[string]bool)
	study := make([]*netsim.Element, 0, len(studyIDs))
	for _, id := range studyIDs {
		e := s.Net.Element(id)
		if e == nil {
			return nil, fmt.Errorf("control: unknown study element %q", id)
		}
		study = append(study, e)
		excluded[id] = true
		// The impact scope of a change at the study element: its subtree
		// and direct upstream chain must not serve as controls.
		for _, d := range s.Net.Descendants(id) {
			excluded[d] = true
		}
		for _, a := range s.Net.Ancestors(id) {
			excluded[a] = true
		}
	}
	for _, id := range s.Exclude {
		excluded[id] = true
	}

	type cand struct {
		id   string
		dist float64
	}
	var cands []cand
	for _, id := range s.Net.IDs() {
		if excluded[id] {
			continue
		}
		c := s.Net.MustElement(id)
		matched := false
		var dsum float64
		for _, se := range study {
			if s.Predicate.Matches(se, c) {
				matched = true
			}
			dsum += netsim.DistanceKm(se.Location, c.Location)
		}
		if !matched {
			continue
		}
		cands = append(cands, cand{id: id, dist: dsum / float64(len(study))})
	}
	if len(cands) < minSize {
		return nil, fmt.Errorf("control: only %d candidates match %s, need >= %d", len(cands), s.Predicate.Name(), minSize)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	sc.SetAttr("predicate", s.Predicate.Name())
	sc.SetAttr("candidates", len(cands))
	sc.Counter(obs.MetricControlCandidates).Add(int64(len(cands)))
	if len(cands) > maxSize {
		cands = cands[:maxSize]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	sc.Counter(obs.MetricControlsSelected).Add(int64(len(out)))
	return out, nil
}
