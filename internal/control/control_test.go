package control

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

func testNet() *netsim.Network {
	return netsim.Build(netsim.DefaultTopologyConfig())
}

func elems(net *netsim.Network, k netsim.Kind) []*netsim.Element {
	var out []*netsim.Element
	for _, id := range net.OfKind(k) {
		out = append(out, net.MustElement(id))
	}
	return out
}

func TestBasicPredicates(t *testing.T) {
	net := testNet()
	nbs := elems(net, netsim.NodeB)
	rncs := elems(net, netsim.RNC)

	if !SameKind().Matches(nbs[0], nbs[1]) {
		t.Error("same-kind should match two NodeBs")
	}
	if SameKind().Matches(nbs[0], rncs[0]) {
		t.Error("same-kind matched NodeB with RNC")
	}
	if !SameTech().Matches(nbs[0], nbs[1]) {
		t.Error("same-tech should match two UMTS towers")
	}
	sibs := net.Children(rncs[0].ID)
	a, b := net.MustElement(sibs[0]), net.MustElement(sibs[1])
	if !SameParent().Matches(a, b) {
		t.Error("same-parent should match siblings")
	}
	if SameParent().Matches(a, net.MustElement(net.Children(rncs[1].ID)[0])) {
		t.Error("same-parent matched across RNCs")
	}
	// Elements without parents never match SameParent.
	mscs := elems(net, netsim.MSC)
	if SameParent().Matches(mscs[0], mscs[1]) {
		t.Error("same-parent matched two root elements")
	}
}

func TestGeographicPredicates(t *testing.T) {
	net := testNet()
	nbs := elems(net, netsim.NodeB)
	var zipMate *netsim.Element
	for _, c := range nbs[1:] {
		if c.ZipCode == nbs[0].ZipCode {
			zipMate = c
			break
		}
	}
	if zipMate != nil && !SameZip().Matches(nbs[0], zipMate) {
		t.Error("same-zip failed on matching zips")
	}
	if !SameRegion().Matches(nbs[0], nbs[1]) != (nbs[0].Region != nbs[1].Region) {
		t.Error("same-region inconsistent")
	}
	huge := WithinKm(1e6)
	if !huge.Matches(nbs[0], nbs[len(nbs)-1]) {
		t.Error("within-1e6km should match everything")
	}
	tiny := WithinKm(0.001)
	if tiny.Matches(nbs[0], nbs[1]) && netsim.DistanceKm(nbs[0].Location, nbs[1].Location) > 0.001 {
		t.Error("within-0.001km matched distant towers")
	}
}

func TestConfigPredicates(t *testing.T) {
	net := testNet()
	nbs := elems(net, netsim.NodeB)
	a := nbs[0]
	var sameSW, diffSW *netsim.Element
	for _, c := range nbs[1:] {
		if c.Config.SoftwareVersion == a.Config.SoftwareVersion {
			sameSW = c
		} else {
			diffSW = c
		}
	}
	if sameSW != nil && !SameSoftware().Matches(a, sameSW) {
		t.Error("same-software failed on equal versions")
	}
	if diffSW != nil && SameSoftware().Matches(a, diffSW) {
		t.Error("same-software matched different versions")
	}
	if !SameVendor().Matches(a, a) || !SameModel().Matches(a, a) || !SameTerrain().Matches(a, a) || !SameTrafficProfile().Matches(a, a) {
		t.Error("reflexive attribute predicates must match self")
	}
}

func TestSONState(t *testing.T) {
	net := testNet()
	son := SONState(true)
	noSon := SONState(false)
	for _, id := range net.OfKind(netsim.NodeB) {
		e := net.MustElement(id)
		if son.Matches(nil, e) != e.Config.SONEnabled {
			t.Error("SONState(true) mismatch")
		}
		if noSon.Matches(nil, e) == e.Config.SONEnabled {
			t.Error("SONState(false) mismatch")
		}
	}
}

func TestCombinators(t *testing.T) {
	net := testNet()
	nbs := elems(net, netsim.NodeB)
	always := NewPredicate("always", func(_, _ *netsim.Element) bool { return true })
	never := NewPredicate("never", func(_, _ *netsim.Element) bool { return false })

	if !And(always, always).Matches(nbs[0], nbs[1]) {
		t.Error("And(true, true) = false")
	}
	if And(always, never).Matches(nbs[0], nbs[1]) {
		t.Error("And(true, false) = true")
	}
	if !Or(never, always).Matches(nbs[0], nbs[1]) {
		t.Error("Or(false, true) = false")
	}
	if Or(never, never).Matches(nbs[0], nbs[1]) {
		t.Error("Or(false, false) = true")
	}
	if !Not(never).Matches(nbs[0], nbs[1]) {
		t.Error("Not(false) = false")
	}
	name := And(SameZip(), SameSoftware()).Name()
	if !strings.Contains(name, "same-zip") || !strings.Contains(name, "same-software") {
		t.Errorf("combinator name %q should list members", name)
	}
}

func TestSelectorTopological(t *testing.T) {
	net := testNet()
	rnc := net.OfKind(netsim.RNC)[0]
	study := net.Children(rnc)[0]
	sel := &Selector{Net: net, Predicate: And(SameKind(), SameParent())}
	got, err := sel.Select([]string{study})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 {
		t.Fatalf("control group size = %d, want 11 sibling NodeBs", len(got))
	}
	for _, id := range got {
		e := net.MustElement(id)
		if e.Parent != rnc || e.Kind != netsim.NodeB {
			t.Errorf("control %s is not a sibling NodeB", id)
		}
		if id == study {
			t.Error("study element selected as its own control")
		}
	}
}

func TestSelectorExcludesImpactScope(t *testing.T) {
	net := testNet()
	rnc := net.OfKind(netsim.RNC)[0]
	// Study at the RNC: its NodeB children (descendants) and its MSC
	// parent must never be controls even if the predicate matches them.
	sel := &Selector{Net: net, Predicate: SameRegion()}
	got, err := sel.Select([]string{rnc})
	if err != nil {
		t.Fatal(err)
	}
	forbidden := map[string]bool{rnc: true}
	for _, d := range net.Descendants(rnc) {
		forbidden[d] = true
	}
	for _, a := range net.Ancestors(rnc) {
		forbidden[a] = true
	}
	for _, id := range got {
		if forbidden[id] {
			t.Errorf("impact-scope element %s selected as control", id)
		}
	}
}

func TestSelectorMaxSizeKeepsNearest(t *testing.T) {
	net := testNet()
	study := net.OfKind(netsim.NodeB)[0]
	sel := &Selector{Net: net, Predicate: And(SameKind(), SameRegion()), MaxSize: 5}
	got, err := sel.Select([]string{study})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("capped control group = %d, want 5", len(got))
	}
	// All selected must be at most as far as any unselected matching
	// candidate.
	sloc := net.MustElement(study).Location
	var maxSel float64
	for _, id := range got {
		if d := netsim.DistanceKm(sloc, net.MustElement(id).Location); d > maxSel {
			maxSel = d
		}
	}
	unselected := &Selector{Net: net, Predicate: And(SameKind(), SameRegion())}
	all, err := unselected.Select([]string{study})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= 5 {
		t.Skip("not enough candidates to verify nearest-first")
	}
	selSet := map[string]bool{}
	for _, id := range got {
		selSet[id] = true
	}
	for _, id := range all {
		if selSet[id] {
			continue
		}
		if d := netsim.DistanceKm(sloc, net.MustElement(id).Location); d < maxSel-1e-9 {
			t.Errorf("unselected candidate %s nearer (%.1f km) than selected max (%.1f km)", id, d, maxSel)
		}
	}
}

func TestSelectorErrors(t *testing.T) {
	net := testNet()
	study := net.OfKind(netsim.NodeB)[0]
	cases := []struct {
		name string
		sel  *Selector
		ids  []string
	}{
		{"empty study", &Selector{Net: net, Predicate: SameKind()}, nil},
		{"no predicate", &Selector{Net: net}, []string{study}},
		{"unknown study", &Selector{Net: net, Predicate: SameKind()}, []string{"ghost"}},
		{"too few candidates", &Selector{Net: net, Predicate: NewPredicate("never", func(_, _ *netsim.Element) bool { return false })}, []string{study}},
	}
	for _, c := range cases {
		if _, err := c.sel.Select(c.ids); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSelectorDeterministic(t *testing.T) {
	net := testNet()
	study := net.OfKind(netsim.NodeB)[3]
	sel := &Selector{Net: net, Predicate: And(SameKind(), SameRegion()), MaxSize: 10}
	a, err := sel.Select([]string{study})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sel.Select([]string{study})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSelectorExplicitExclude(t *testing.T) {
	net := testNet()
	rnc := net.OfKind(netsim.RNC)[0]
	study := net.Children(rnc)[0]
	peer := net.Children(rnc)[1]
	sel := &Selector{Net: net, Predicate: And(SameKind(), SameParent()), Exclude: []string{peer}}
	got, err := sel.Select([]string{study})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		if id == peer {
			t.Error("explicitly excluded element selected")
		}
	}
	if len(got) != 10 {
		t.Errorf("control group = %d, want 10", len(got))
	}
}
