package litmus

// Batch assessment with cross-change amortization. A changelog assessed
// one change at a time pays N× for work that is largely shared across
// changes on the same world: control selection depends only on the
// change's elements and propagation flag, panel assembly only on the
// control set, KPI and window, and the before-window QR factorizations
// only on the control panel's values and the change time. AssessBatch
// groups entries by those signatures, performs each distinct piece of
// work once, and shares the products read-only — with a per-change
// fallback so every entry's result stays bit-identical to an
// independent AssessChangeContext call (pinned by the equivalence test
// in batch_test.go at workers 1/2/4/8, including under fault
// injection).

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"repro/internal/changelog"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/obs"
)

// BatchEntry is one changelog entry of a batch assessment: the change
// plus, optionally, the series provider supplying its world (nil uses
// the pipeline's provider). Per-entry providers let a caller feed each
// change its own counter stream — the serve tier overlays each entry's
// effect on a shared base world this way — while the batch still shares
// factorizations across entries whose control panels carry identical
// values.
type BatchEntry struct {
	Change   *changelog.Change
	Provider SeriesProvider
}

// BatchAssessment is the outcome of one batch: per-entry assessments
// and errors, positionally 1:1 with the submitted entries, plus the
// sharing the batch achieved.
type BatchAssessment struct {
	// Results[i] is entry i's assessment; nil when Errors[i] != nil.
	Results []*ChangeAssessment
	// Errors[i] is entry i's failure (validation, control selection, or
	// every KPI unassessable); nil when the entry assessed. A failed
	// entry never fails the batch.
	Errors []error
	// PanelsShared counts per-KPI panel assemblies answered from an
	// earlier entry's identical assembly instead of re-fetched from the
	// provider.
	PanelsShared int64
	// FactorizationsReused counts before-window QR factorizations
	// adopted from a shared panel preparation instead of recomputed —
	// the cross-change analogue of the group-shared fast path.
	FactorizationsReused int64
}

// AssessChangelog assesses every change of a changelog against the
// pipeline's provider in one batch, amortizing control selection, panel
// assembly and before-window factorizations across entries with
// overlapping signatures. Results are bit-identical to calling
// AssessChangeContext once per change.
func (p *Pipeline) AssessChangelog(ctx context.Context, changes []*changelog.Change, kpis []KPI, windowDays int) (*BatchAssessment, error) {
	entries := make([]BatchEntry, len(changes))
	for i, c := range changes {
		entries[i] = BatchEntry{Change: c}
	}
	return p.AssessBatch(ctx, entries, kpis, windowDays)
}

// batchEntryState carries one entry through the batch phases.
type batchEntryState struct {
	change   *changelog.Change
	provider SeriesProvider
	esc      *obs.Scope
	assessor *Assessor
	err      error // terminal per-entry error (validation, selection)
	out      *ChangeAssessment
	failures []AssessmentFailure
	kpiErrs  []error
	panels   []entryPanels
	shared   []*core.PanelFactors
	results  []GroupResult
	errs     []error
}

type entryPanels struct {
	studies, controls *Panel
}

// panelEntry is one memoized per-KPI panel assembly: the panels plus the
// element-level failures and KPI-level error the assembly produced, so a
// cache hit replays them into the reusing entry exactly as a fresh
// assembly would.
type panelEntry struct {
	studies, controls *Panel
	fails             []AssessmentFailure
	err               error
}

type panelCacheKey struct {
	sel string // selection signature (elements + propagation)
	kpi int    // index into the batch's KPI list
	at  int64  // change time (UnixNano) — the window anchor
}

type selEntry struct {
	controls []string
	err      error
}

// factorGroup is one set of (entry × KPI) assessments whose control
// panels are value-identical at the same change time — the unit that
// shares one PanelFactors preparation.
type factorGroup struct {
	rep     *Panel // representative control panel
	at      time.Time
	members []groupRef
	factors *core.PanelFactors
}

type groupRef struct {
	entry, kpi int
}

// AssessBatch assesses every entry of a batch, sharing control
// selections, panel assemblies and before-window factorizations across
// entries whose signatures coincide. Batch-level preconditions (no
// network, no KPIs, short window, canceled context) fail the whole call;
// everything else — an invalid change, a failed selection, unassessable
// KPIs — is reported per entry in BatchAssessment.Errors without
// affecting sibling entries.
//
// Determinism contract: entry i's Result and Error are bit-identical to
// AssessChangeContext(ctx, entries[i].Change, kpis, windowDays) on a
// pipeline whose Provider is entry i's provider, for every worker count.
// The shared products are precisely the values the per-change path would
// compute, and adoption falls back to fresh computation on any mismatch,
// so sharing can change cost but never bytes.
func (p *Pipeline) AssessBatch(ctx context.Context, entries []BatchEntry, kpis []KPI, windowDays int) (*BatchAssessment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := p.Obs.Child(obs.SpanAssessBatch)
	defer sc.End()
	sc.SetAttr("entries", len(entries))
	sc.SetAttr("kpis", len(kpis))
	if p.Network == nil {
		return nil, fmt.Errorf("litmus: pipeline needs a network and a series provider")
	}
	if len(kpis) == 0 {
		return nil, fmt.Errorf("litmus: no KPIs to assess")
	}
	if windowDays < 2 {
		return nil, fmt.Errorf("litmus: window of %d days too short", windowDays)
	}
	assessor := p.Assessor
	if assessor == nil {
		var err error
		assessor, err = core.NewAssessor(core.Config{})
		if err != nil {
			return nil, err
		}
	}
	pred := p.ControlPredicate
	if pred == nil {
		pred = control.And(control.SameKind(), control.SameRegion())
	}
	sc.Counter(obs.MetricBatchEntries).Add(int64(len(entries)))

	out := &BatchAssessment{
		Results: make([]*ChangeAssessment, len(entries)),
		Errors:  make([]error, len(entries)),
	}
	states := make([]*batchEntryState, len(entries))
	defer func() {
		for _, st := range states {
			if st != nil {
				st.esc.End()
			}
		}
	}()

	// Phase 1 — sequential per-entry setup: validation, control
	// selection, panel assembly. Sequential because SeriesProvider
	// implementations need not be safe for concurrent use (the same
	// contract AssessChangeContext honors); selection and assembly are
	// memoized so entries with repeated signatures pay once.
	selCache := map[string]selEntry{}
	panelCache := map[panelCacheKey]*panelEntry{}
	for i := range entries {
		change := entries[i].Change
		provider := entries[i].Provider
		if provider == nil {
			provider = p.Provider
		}
		st := &batchEntryState{change: change, provider: provider}
		states[i] = st
		st.esc = sc.Child(obs.SpanBatchEntry)
		if change != nil {
			st.esc.SetAttr("change", change.ID)
		}
		st.assessor = assessor.WithObserver(st.esc)
		if provider == nil {
			st.err = fmt.Errorf("litmus: pipeline needs a network and a series provider")
			continue
		}
		if change == nil {
			st.err = fmt.Errorf("litmus: batch entry %d has no change", i)
			continue
		}
		if err := change.Validate(p.Network); err != nil {
			st.err = err
			continue
		}
		sk := batchSelKey(change)
		se, ok := selCache[sk]
		if !ok {
			sel := &control.Selector{
				Net:       p.Network,
				Predicate: pred,
				Exclude:   change.ImpactScope(p.Network),
				MaxSize:   p.MaxControls,
				Obs:       st.esc,
			}
			se.controls, se.err = sel.Select(change.Elements)
			selCache[sk] = se
		}
		if se.err != nil {
			st.err = fmt.Errorf("litmus: control selection: %w", se.err)
			continue
		}
		st.out = &ChangeAssessment{
			Change:       change,
			ControlGroup: se.controls,
			PerKPI:       make(map[KPI]GroupResult, len(kpis)),
		}
		st.panels = make([]entryPanels, len(kpis))
		st.kpiErrs = make([]error, len(kpis))
		st.shared = make([]*core.PanelFactors, len(kpis))
		// Assemblies are memoized only for entries reading the pipeline's
		// provider: a per-entry provider can serve different values for
		// the same element, so its panels are never shared by signature —
		// value-identical panels still share factorizations in phase 2.
		pp := *p
		pp.Provider = provider
		cacheable := entries[i].Provider == nil
		assembly := st.esc.Child(obs.SpanPanelAssembly)
		for ki, metric := range kpis {
			var pe *panelEntry
			if cacheable {
				key := panelCacheKey{sel: sk, kpi: ki, at: change.At.UnixNano()}
				if hit := panelCache[key]; hit != nil {
					sc.Counter(obs.MetricBatchPanelsShared).Add(1)
					out.PanelsShared++
					pe = hit
				} else {
					pe = assemblePanels(&pp, change, se.controls, metric, windowDays)
					panelCache[key] = pe
				}
			} else {
				pe = assemblePanels(&pp, change, se.controls, metric, windowDays)
			}
			st.failures = append(st.failures, pe.fails...)
			if pe.err != nil {
				st.kpiErrs[ki] = pe.err
				st.failures = append(st.failures, AssessmentFailure{KPI: metric, Reason: core.ReasonOf(pe.err), Detail: pe.err.Error()})
				continue
			}
			st.panels[ki] = entryPanels{studies: pe.studies, controls: pe.controls}
		}
		assembly.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2 — group (entry × KPI) assessments whose control panels are
	// value-identical at the same change time, and prepare each
	// multi-member group's factorizations once. Pointer identity (from
	// the assembly cache) short-circuits; otherwise panels are matched by
	// content hash plus full verification, so a hash collision costs a
	// comparison, never a wrong share.
	var groups []*factorGroup
	byPtr := map[*Panel]*factorGroup{}
	byHash := map[uint64][]*factorGroup{}
	for i, st := range states {
		if st.err != nil {
			continue
		}
		for ki := range kpis {
			if st.kpiErrs[ki] != nil {
				continue
			}
			pan := st.panels[ki]
			// Only groups the shared fast path can serve are worth
			// grouping: a uniform time grid and at least one fully
			// observed study element. Others fall back per element,
			// exactly as the per-change path would.
			if !pan.studies.Index().Equal(pan.controls.Index()) || !core.SharedEligible(pan.studies, st.change.At) {
				continue
			}
			g := byPtr[pan.controls]
			if g != nil && !g.at.Equal(st.change.At) {
				g = nil
			}
			if g == nil {
				h := panelContentHash(pan.controls, st.change.At)
				for _, cand := range byHash[h] {
					if cand.at.Equal(st.change.At) && panelsEqual(cand.rep, pan.controls) {
						g = cand
						break
					}
				}
				if g == nil {
					g = &factorGroup{rep: pan.controls, at: st.change.At}
					groups = append(groups, g)
					byHash[h] = append(byHash[h], g)
				}
				if _, ok := byPtr[pan.controls]; !ok {
					byPtr[pan.controls] = g
				}
			}
			g.members = append(g.members, groupRef{entry: i, kpi: ki})
		}
	}
	prepAssessor := assessor.WithObserver(sc)
	for _, g := range groups {
		if len(g.members) < 2 {
			// A panel no other entry touches gains nothing from external
			// preparation; its assessment prepares (and shares across its
			// own elements) exactly as the per-change path does.
			continue
		}
		g.factors = prepAssessor.PrepPanelFactors(ctx, g.rep, g.at)
		if g.factors == nil {
			continue
		}
		out.FactorizationsReused += int64(len(g.members)) * g.factors.Factorizations()
		for _, m := range g.members {
			states[m.entry].shared[m.kpi] = g.factors
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3 — the assessment grid: pure computation on immutable
	// panels, fanned out over every live (entry × KPI) pair. Per-iteration
	// seeding makes each group result independent of scheduling, so the
	// batch is deterministic for every worker count.
	type workItem struct {
		st *batchEntryState
		ki int
	}
	var items []workItem
	for _, st := range states {
		if st.err != nil {
			continue
		}
		st.results = make([]GroupResult, len(kpis))
		st.errs = make([]error, len(kpis))
		for ki := range kpis {
			if st.kpiErrs[ki] == nil {
				items = append(items, workItem{st, ki})
			}
		}
	}
	core.ForEachIndex(assessor.Config().Workers, len(items), func(n int) {
		it := items[n]
		pan := it.st.panels[it.ki]
		it.st.results[it.ki], it.st.errs[it.ki] = it.st.assessor.AssessGroupPrepared(ctx, it.st.shared[it.ki], pan.studies, pan.controls, it.st.change.At, kpis[it.ki])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 4 — per-entry gathering, in the per-change path's exact
	// order: KPI-level errors, then element-level degradations per voted
	// KPI, then the decision.
	for i, st := range states {
		if st.err != nil {
			out.Errors[i] = st.err
			continue
		}
		var firstErr error
		failures := st.failures
		for ki, metric := range kpis {
			err := st.kpiErrs[ki]
			if err == nil && st.errs[ki] != nil {
				err = st.errs[ki]
				failures = append(failures, AssessmentFailure{KPI: metric, Reason: core.ReasonOf(err), Detail: err.Error()})
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("litmus: %v: %w", metric, err)
				}
				continue
			}
			for _, f := range st.results[ki].Failures {
				failures = append(failures, AssessmentFailure{KPI: metric, Element: f.Element, Reason: f.Reason, Detail: f.Detail})
			}
			st.out.PerKPI[metric] = st.results[ki]
		}
		if len(st.out.PerKPI) == 0 {
			out.Errors[i] = firstErr
			continue
		}
		st.out.Failures = failures
		st.out.Degraded = len(failures) > 0
		st.out.Decision = decide(st.out.PerKPI)
		st.esc.Counter(obs.Labeled(obs.MetricDecisions, "decision", st.out.Decision.String())).Add(1)
		out.Results[i] = st.out
	}
	return out, nil
}

// assemblePanels runs the per-change path's panel assembly for one KPI
// and packages the outcome for memoization.
func assemblePanels(p *Pipeline, change *changelog.Change, controls []string, metric KPI, windowDays int) *panelEntry {
	studies, controlsPanel, fails, err := p.panels(change, controls, metric, windowDays)
	return &panelEntry{studies: studies, controls: controlsPanel, fails: fails, err: err}
}

// batchSelKey is the control-selection signature of a change: two
// changes with the same elements and propagation flag select identical
// control groups (the predicate, cap and network are pipeline-level).
func batchSelKey(c *changelog.Change) string {
	var b strings.Builder
	for _, e := range c.Elements {
		b.WriteString(e)
		b.WriteByte(0)
	}
	if c.PropagateToDescendants {
		b.WriteByte(1)
	}
	return b.String()
}

// panelContentHash fingerprints a control panel's assessment-relevant
// content — time grid, column IDs in order, every value's exact bits —
// plus the change time anchoring the before/after split. Equal content
// hashes equal; collisions are resolved by panelsEqual before sharing.
func panelContentHash(p *Panel, at time.Time) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	idx := p.Index()
	w64(uint64(idx.Start.UnixNano()))
	w64(uint64(idx.Step))
	w64(uint64(idx.N))
	w64(uint64(at.UnixNano()))
	for _, id := range p.IDs() {
		h.Write([]byte(id))
		h.Write([]byte{0})
		for _, v := range p.MustSeries(id).Values {
			w64(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// panelsEqual reports bitwise value identity of two panels: same index,
// same column IDs in the same order, every observation's exact bits
// equal (NaNs compare by payload, so panels with identical missing-data
// patterns still match).
func panelsEqual(a, b *Panel) bool {
	if !a.Index().Equal(b.Index()) || a.Len() != b.Len() {
		return false
	}
	aIDs, bIDs := a.IDs(), b.IDs()
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			return false
		}
	}
	for _, id := range aIDs {
		av, bv := a.MustSeries(id).Values, b.MustSeries(id).Values
		if len(av) != len(bv) {
			return false
		}
		for j := range av {
			if math.Float64bits(av[j]) != math.Float64bits(bv[j]) {
				return false
			}
		}
	}
	return true
}
