package litmus

import (
	"context"
	"fmt"
	"time"

	"repro/internal/changelog"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/kpi"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// SeriesProvider supplies KPI time-series per network element — the
// interface between Litmus and whatever performance-measurement pipeline
// feeds it. internal/gen's Generator satisfies it via ProviderFromGenerator
// in deployments without a live feed.
type SeriesProvider interface {
	// Series returns the KPI series for the element, or false if the
	// element has no data for that KPI.
	Series(elementID string, metric KPI) (Series, bool)
}

// Decision is the go / no-go outcome for the wide-scale rollout of a
// change (paper §1: the FFA "go or no-go" decision).
type Decision int

// Rollout decisions.
const (
	// NoGo means at least one KPI showed a relative degradation; the
	// change should be rolled back or re-tested.
	NoGo Decision = iota
	// Hold means no degradation was seen but no improvement either; more
	// evidence is needed before a network-wide rollout.
	Hold
	// Go means at least one KPI improved and none degraded.
	Go
)

func (d Decision) String() string {
	switch d {
	case NoGo:
		return "no-go"
	case Hold:
		return "hold"
	case Go:
		return "go"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// ParseDecision is the inverse of Decision.String, so reports and JSON
// documents that render decisions as text round-trip back into typed
// values.
func ParseDecision(s string) (Decision, error) {
	switch s {
	case "no-go":
		return NoGo, nil
	case "hold":
		return Hold, nil
	case "go":
		return Go, nil
	default:
		return 0, fmt.Errorf("litmus: unknown decision %q (want no-go, hold or go)", s)
	}
}

// ChangeAssessment is the full Litmus report for one change.
type ChangeAssessment struct {
	// Change is the assessed change record.
	Change *changelog.Change
	// ControlGroup lists the selected control element IDs.
	ControlGroup []string
	// PerKPI holds the voted group result per assessed KPI. KPIs that
	// could not be assessed at all are absent here and explained in
	// Failures.
	PerKPI map[KPI]GroupResult
	// Decision is the derived go/no-go recommendation, computed over the
	// KPIs that assessed.
	Decision Decision
	// Degraded reports a partial assessment: some element or KPI could
	// not be assessed and Failures explains why. The decision stands on
	// the evidence that survived.
	Degraded bool
	// Failures lists the isolated degradations in deterministic order
	// (KPI input order, elements within a KPI in input order).
	Failures []AssessmentFailure
}

// AssessmentFailure records one isolated degradation in a change
// assessment: the KPI it occurred under and, when the failure is
// element-scoped, the element (empty for a KPI-level failure such as a
// control group with no usable data).
type AssessmentFailure struct {
	KPI     KPI
	Element string
	Reason  core.Reason
	Detail  string
}

// Pipeline wires the full assessment flow of the paper: change record →
// control-group selection (domain-knowledge-guided, excluding the
// change's causal impact scope) → per-element robust spatial regression →
// per-KPI voting → go/no-go recommendation.
type Pipeline struct {
	// Network is the element topology.
	Network *netsim.Network
	// Provider supplies KPI series.
	Provider SeriesProvider
	// Assessor runs the core algorithm; nil uses defaults.
	Assessor *Assessor
	// ControlPredicate selects control candidates; nil uses
	// same-kind-same-region.
	ControlPredicate Predicate
	// MaxControls caps the control group size (default 100, §3.3).
	MaxControls int
	// Obs is the optional observability scope (see internal/obs and the
	// root NewScope/NewMetricsRegistry helpers): AssessChange records an
	// assess-change span with control-select, panel-assembly and per-KPI
	// assessment stages beneath it, plus decision counters. Nil (the
	// default) is the documented zero-overhead fast path; assessments are
	// bit-identical either way.
	Obs *obs.Scope
}

// AssessChange assesses a change over the given KPIs using windows of
// windowDays before and after the change time.
func (p *Pipeline) AssessChange(change *changelog.Change, kpis []KPI, windowDays int) (*ChangeAssessment, error) {
	return p.AssessChangeContext(context.Background(), change, kpis, windowDays)
}

// AssessChangeContext is AssessChange honoring ctx: cancellation (or a
// deadline) propagates into every per-KPI group assessment and from
// there between sampling iterations, so a canceled assessment stops its
// workers promptly and returns ctx.Err(). A background context takes
// the exact AssessChange path and produces bit-identical results.
func (p *Pipeline) AssessChangeContext(ctx context.Context, change *changelog.Change, kpis []KPI, windowDays int) (*ChangeAssessment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := p.Obs.Child(obs.SpanAssessChange)
	defer sc.End()
	if p.Network == nil || p.Provider == nil {
		return nil, fmt.Errorf("litmus: pipeline needs a network and a series provider")
	}
	if err := change.Validate(p.Network); err != nil {
		return nil, err
	}
	sc.SetAttr("change", change.ID)
	sc.SetAttr("kpis", len(kpis))
	if len(kpis) == 0 {
		return nil, fmt.Errorf("litmus: no KPIs to assess")
	}
	if windowDays < 2 {
		return nil, fmt.Errorf("litmus: window of %d days too short", windowDays)
	}
	assessor := p.Assessor
	if assessor == nil {
		var err error
		assessor, err = core.NewAssessor(core.Config{})
		if err != nil {
			return nil, err
		}
	}
	pred := p.ControlPredicate
	if pred == nil {
		pred = control.And(control.SameKind(), control.SameRegion())
	}

	// Select the control group outside the change's causal impact scope.
	// The selector records its own control-select span under ours.
	scope := change.ImpactScope(p.Network)
	sel := &control.Selector{
		Net:       p.Network,
		Predicate: pred,
		Exclude:   scope,
		MaxSize:   p.MaxControls,
		Obs:       sc,
	}
	controls, err := sel.Select(change.Elements)
	if err != nil {
		return nil, fmt.Errorf("litmus: control selection: %w", err)
	}

	out := &ChangeAssessment{
		Change:       change,
		ControlGroup: controls,
		PerKPI:       make(map[KPI]GroupResult, len(kpis)),
	}
	// Panels are assembled sequentially — SeriesProvider implementations
	// (e.g. the caching synthetic generator) need not be safe for
	// concurrent use. The assessment grid that follows is pure
	// computation on immutable panels, so the element × KPI fan-out is
	// race-free: AssessGroup spreads the elements of each KPI over the
	// worker pool, and the KPIs themselves run concurrently here.
	// Results and errors are gathered in KPI order, so the assessment —
	// including which error surfaces — is independent of scheduling.
	type kpiPanels struct {
		studies, controls *Panel
	}
	assembly := sc.Child(obs.SpanPanelAssembly)
	panels := make([]kpiPanels, len(kpis))
	kpiErrs := make([]error, len(kpis))
	var failures []AssessmentFailure
	for i, metric := range kpis {
		studies, controlsPanel, fails, err := p.panels(change, controls, metric, windowDays)
		failures = append(failures, fails...)
		if err != nil {
			// The whole KPI is unassessable (no usable study or control
			// data); record it and assess the remaining KPIs.
			kpiErrs[i] = err
			failures = append(failures, AssessmentFailure{KPI: metric, Reason: core.ReasonOf(err), Detail: err.Error()})
			continue
		}
		panels[i] = kpiPanels{studies: studies, controls: controlsPanel}
	}
	assembly.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Each KPI's AssessGroup opens its own assess-group span under the
	// assess-change span; sibling spans may be created concurrently.
	assessor = assessor.WithObserver(sc)
	results := make([]GroupResult, len(kpis))
	errs := make([]error, len(kpis))
	core.ForEachIndex(assessor.Config().Workers, len(kpis), func(i int) {
		if kpiErrs[i] != nil {
			return
		}
		results[i], errs[i] = assessor.AssessGroupContext(ctx, panels[i].studies, panels[i].controls, change.At, kpis[i])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var firstErr error
	for i, metric := range kpis {
		err := kpiErrs[i]
		if err == nil && errs[i] != nil {
			err = errs[i]
			failures = append(failures, AssessmentFailure{KPI: metric, Reason: core.ReasonOf(err), Detail: err.Error()})
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("litmus: %v: %w", metric, err)
			}
			continue
		}
		// Element-level degradations within a KPI that still voted.
		for _, f := range results[i].Failures {
			failures = append(failures, AssessmentFailure{KPI: metric, Element: f.Element, Reason: f.Reason, Detail: f.Detail})
		}
		out.PerKPI[metric] = results[i]
	}
	if len(out.PerKPI) == 0 {
		// Nothing assessed: no evidence to stand a decision on — that is
		// an error, not a degraded result.
		return nil, firstErr
	}
	out.Failures = failures
	out.Degraded = len(failures) > 0
	out.Decision = decide(out.PerKPI)
	sc.Counter(obs.Labeled(obs.MetricDecisions, "decision", out.Decision.String())).Add(1)
	return out, nil
}

// panels assembles the study and control panels for one KPI, windowed to
// ±windowDays around the change. Elements the provider has no data for,
// or whose windowed series disagrees with the panel's time grid (e.g.
// dropped timepoints in broken telemetry), are skipped and reported in
// fails — the panel panics of a naive Add are never reachable from data.
// The returned error is KPI-level: no usable study element, or no usable
// control.
func (p *Pipeline) panels(change *changelog.Change, controls []string, metric KPI, windowDays int) (*Panel, *Panel, []AssessmentFailure, error) {
	window := time.Duration(windowDays) * 24 * time.Hour
	from := change.At.Add(-window)
	to := change.At.Add(window)

	var fails []AssessmentFailure
	fail := func(id string, err error) {
		fails = append(fails, AssessmentFailure{KPI: metric, Element: id, Reason: core.ReasonOf(err), Detail: err.Error()})
	}
	fetch := func(id string) (Series, error) {
		s, ok := p.Provider.Series(id, metric)
		if !ok {
			return Series{}, fmt.Errorf("%w: no %v data for element %s", core.ErrNoData, metric, id)
		}
		return s.Window(from, to), nil
	}
	var studies *Panel
	for _, id := range change.Elements {
		w, err := fetch(id)
		if err == nil && studies != nil && !w.Index.Equal(studies.Index()) {
			err = fmt.Errorf("%w: element %s window disagrees with the study panel's time grid", core.ErrIndexMismatch, id)
		}
		if err != nil {
			fail(id, err)
			continue
		}
		if studies == nil {
			studies = NewPanel(w.Index)
		}
		studies.Add(id, w)
	}
	if studies == nil {
		return nil, nil, fails, fmt.Errorf("%w: no study element has usable %v data", core.ErrNoData, metric)
	}
	panel := NewPanel(studies.Index())
	for _, id := range controls {
		w, err := fetch(id)
		if err == nil && !w.Index.Equal(studies.Index()) {
			err = fmt.Errorf("%w: control %s window disagrees with the study panel's time grid", core.ErrIndexMismatch, id)
		}
		if err != nil {
			fail(id, err)
			continue
		}
		panel.Add(id, w)
	}
	if panel.Len() == 0 {
		return nil, nil, fails, fmt.Errorf("%w: no control element has usable %v data", core.ErrInsufficientControls, metric)
	}
	return studies, panel, fails, nil
}

// decide derives the rollout recommendation: any degradation → NoGo; at
// least one improvement and no degradation → Go; otherwise Hold.
func decide(perKPI map[KPI]GroupResult) Decision {
	improved := false
	for _, res := range perKPI {
		switch res.Overall {
		case kpi.Degradation:
			return NoGo
		case kpi.Improvement:
			improved = true
		}
	}
	if improved {
		return Go
	}
	return Hold
}

// providerFunc adapts a function to SeriesProvider.
type providerFunc func(string, KPI) (Series, bool)

func (f providerFunc) Series(id string, metric KPI) (Series, bool) { return f(id, metric) }

// ProviderFunc wraps a function as a SeriesProvider.
func ProviderFunc(f func(elementID string, metric KPI) (Series, bool)) SeriesProvider {
	return providerFunc(f)
}
