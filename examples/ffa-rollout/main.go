// FFA rollout pipeline: the full First Field Application workflow of the
// paper driven through the litmus.Pipeline facade — change record,
// domain-knowledge-guided control selection (excluding the change's
// causal impact scope), per-element robust regression, per-KPI voting,
// and the go / no-go rollout recommendation.
//
// Two changes are trialed: a radio-link timer tuning that genuinely
// helps, and a feature activation that silently raises the dropped-call
// rate (the paper's §5.1 rollback story). The pipeline recommends "go"
// for the first and "no-go" for the second.
//
// Run with: go run ./examples/ffa-rollout
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/changelog"
	"repro/internal/control"
	"repro/internal/gen"
	"repro/internal/kpi"
	"repro/internal/netsim"
	"repro/internal/timeseries"

	litmus "repro"
)

func main() {
	net := netsim.Build(netsim.DefaultTopologyConfig())
	epoch := time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)
	changeAt := epoch.AddDate(0, 0, 14)

	// The change management log: two FFA trials at different RNCs' towers.
	goodStudy := net.Children(net.OfKind(netsim.RNC)[0])[:3]
	badStudy := net.Children(net.OfKind(netsim.RNC)[1])[:3]
	log2 := changelog.NewLog()
	good := &changelog.Change{
		ID: "CHG-2041", Type: changelog.ConfigChange, Frequency: changelog.LowFrequency,
		Description: "radio link failure recovery timer tuning",
		Elements:    goodStudy, At: changeAt,
		Expected:    map[kpi.KPI]kpi.Impact{kpi.VoiceRetainability: kpi.Improvement},
		TrueQuality: 1.8,
	}
	bad := &changelog.Change{
		ID: "CHG-2042", Type: changelog.FeatureActivation, Frequency: changelog.LowFrequency,
		Description: "fast data session start-up feature",
		Elements:    badStudy, At: changeAt,
		Expected:    map[kpi.KPI]kpi.Impact{kpi.DataAccessibility: kpi.Improvement},
		TrueQuality: -1.6, // the regression the paper's teams found in the core network
	}
	for _, c := range []*changelog.Change{good, bad} {
		if err := log2.Add(net, c); err != nil {
			log.Fatal(err)
		}
	}

	// KPI feed: the synthetic generator, with the changes' true effects
	// injected from the changelog's ground truth.
	ix := timeseries.NewIndex(epoch, 6*time.Hour, 28*4)
	gcfg := gen.DefaultConfig(ix)
	gcfg.Seed = 17
	gcfg.Effects = log2.Effects(net)
	g := gen.New(net, gcfg)

	pipeline := &litmus.Pipeline{
		Network: net,
		Provider: litmus.ProviderFunc(func(id string, metric litmus.KPI) (litmus.Series, bool) {
			if net.Element(id) == nil {
				return litmus.Series{}, false
			}
			return g.Series(id, metric), true
		}),
		Assessor:         litmus.MustNewAssessor(litmus.Config{EffectFloor: 0.004}),
		ControlPredicate: control.And(control.SameKind(), control.SameParent()),
	}

	kpis := []litmus.KPI{kpi.VoiceRetainability, kpi.DataAccessibility, kpi.DataRetainability}
	for _, change := range log2.All() {
		res, err := pipeline.AssessChange(change, kpis, 14)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %s\n", change.ID, change.Description)
		fmt.Printf("  study group: %d elements; control group: %d elements\n",
			len(change.Elements), len(res.ControlGroup))
		for _, metric := range kpis {
			r := res.PerKPI[metric]
			fmt.Printf("  %-22s %-12s (votes %d↑ %d↔ %d↓)\n", metric.String()+":", r.Overall,
				r.Votes[kpi.Improvement], r.Votes[kpi.NoImpact], r.Votes[kpi.Degradation])
		}
		fmt.Printf("  rollout recommendation: %s\n\n", res.Decision)
	}
}
