// Holiday assessment: the paper's §5.4 case study. A parameter change to
// improve cell-change success rates is trialed at a few RNCs; the
// assessment window lands on a holiday period that lifts data
// retainability everywhere. Study-only analysis would have recommended a
// network-wide rollout on the back of the holiday; Litmus sees no
// relative improvement and the rollout is withheld. (DiD, biased by the
// RNCs' different holiday intensities, even misreads one element as a
// degradation — the §3.2 robustness argument in action.)
//
// Run with: go run ./examples/holiday-assessment
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/extfactor"
	"repro/internal/gen"
	"repro/internal/kpi"
	"repro/internal/netsim"
	"repro/internal/timeseries"

	litmus "repro"
)

func main() {
	topo := netsim.DefaultTopologyConfig()
	topo.ControllersPerRegion = 12 // enough RNCs for a same-region control group
	net := netsim.Build(topo)
	rncs := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.RNC && e.Region == netsim.Southeast
	})
	study := rncs[:2]
	controls := rncs[2:]

	// Mid-December change; the holiday season begins days later.
	epoch := time.Date(2012, 12, 3, 0, 0, 0, 0, time.UTC)
	ix := timeseries.NewIndex(epoch, 6*time.Hour, 36*4)
	changeAt := epoch.AddDate(0, 0, 12)
	holidayStart := changeAt.AddDate(0, 0, 2)

	gcfg := gen.DefaultConfig(ix)
	gcfg.Seed = 23
	gcfg.Factors = extfactor.Stack{
		// Holiday: business-hour load drops across the region...
		extfactor.TrafficEvent{
			Kind: extfactor.Holiday, Label: "holiday-season", Region: netsim.Southeast,
			Start: holidayStart, End: ix.End(), LoadMult: 0.7, Ramp: 24 * time.Hour,
		},
		// ...which relieves congestion stress for everyone.
		extfactor.RegionWeatherEvent{
			Kind: extfactor.Rain, Label: "holiday-relief", Region: netsim.Southeast,
			Start: holidayStart, End: ix.End(), Severity: -1.8, Ramp: 24 * time.Hour,
		},
	}
	// Ground truth: the parameter change does nothing for retainability.
	gcfg.Effects = []gen.Effect{gen.EffectOn("cell-change-parameter", study, changeAt, time.Time{}, 0)}
	g := gen.New(net, gcfg)

	metric := kpi.DataRetainability
	assessor := litmus.MustNewAssessor(litmus.Config{EffectFloor: 0.004})
	controlPanel := g.Panel(metric, controls)

	fmt.Println("change: cell-change success-rate parameter at 2 RNCs (true effect: none)")
	fmt.Println("confounder: holiday season lifting data retainability across the region")
	fmt.Println()
	for _, id := range study {
		series := g.Series(id, metric)
		naive, err := litmus.StudyOnly(series, changeAt, metric, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		did, pairs, err := litmus.DiD(series, controlPanel, changeAt, metric, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		lit, err := assessor.AssessElement(id, series, controlPanel, changeAt, metric)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", id)
		fmt.Printf("  study-only:  %-12s shift %+.4f   <- the holiday, misread\n", naive.Impact, naive.Shift)
		fmt.Printf("  DiD:         %-12s shift %+.4f   (%d control pairs)\n", did.Impact, did.Shift, len(pairs))
		fmt.Printf("  litmus:      %-12s shift %+.4f\n", lit.Impact, lit.Shift)
	}
	fmt.Println("\nDecision (as in the paper): no relative improvement — the parameter change")
	fmt.Println("was not rolled out to the other RNCs.")
}
