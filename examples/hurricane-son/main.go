// Hurricane SON assessment: the paper's §5.3 case study as a runnable
// program. A hurricane hits the Northeast; every tower degrades. The
// question the engineering teams asked Litmus: did the SON (Self
// Optimizing Network) features — automatic neighbor discovery and load
// balancing, deployed on part of the fleet well before the storm — earn
// their network-wide rollout?
//
// Study group: SON-enabled towers. Control group: towers without SON.
// Study-only analysis sees only the hurricane's absolute degradation;
// Litmus sees the SON towers holding up relatively better.
//
// Run with: go run ./examples/hurricane-son
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/extfactor"
	"repro/internal/gen"
	"repro/internal/kpi"
	"repro/internal/netsim"
	"repro/internal/timeseries"

	litmus "repro"
)

func main() {
	// Build the network; ~30% of towers carry SON features.
	topo := netsim.DefaultTopologyConfig()
	topo.SONFraction = 0.3
	net := netsim.Build(topo)

	sonTowers := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.Northeast && e.Config.SONEnabled
	})
	plainTowers := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == netsim.Northeast && !e.Config.SONEnabled
	})
	fmt.Printf("Northeast fleet: %d SON-enabled towers (study), %d without (control)\n\n",
		len(sonTowers), len(plainTowers))

	// Timeline: two weeks either side of landfall.
	start := time.Date(2012, 10, 15, 0, 0, 0, 0, time.UTC)
	ix := timeseries.NewIndex(start, 6*time.Hour, 28*4)
	landfall := start.AddDate(0, 0, 14)

	sandy := extfactor.WeatherEvent{
		Kind: extfactor.Hurricane, Label: "hurricane-sandy",
		Center: netsim.RegionCenter(netsim.Northeast), RadiusKm: 600,
		Start: landfall, End: landfall.Add(12 * 24 * time.Hour),
		Severity: 6, Ramp: 36 * time.Hour,
	}
	// Ground truth for the synthetic world: SON mitigates part of the
	// storm stress by re-balancing load around failures.
	sonHelp := gen.Effect{
		Label: "son-mitigation",
		Match: func(e *netsim.Element) bool { return e.Config.SONEnabled },
		Start: landfall, Quality: 2.5,
	}
	gcfg := gen.DefaultConfig(ix)
	gcfg.Seed = 11
	gcfg.Factors = extfactor.Stack{sandy}
	gcfg.Effects = []gen.Effect{sonHelp}
	gcfg.FailureScale = 2
	g := gen.New(net, gcfg)

	assessor := litmus.MustNewAssessor(litmus.Config{EffectFloor: 0.004})
	for _, metric := range []kpi.KPI{kpi.VoiceAccessibility, kpi.VoiceRetainability} {
		// Assess the whole SON group with voting, against the non-SON
		// control panel.
		studies := g.Panel(metric, sonTowers)
		controlPanel := g.Panel(metric, plainTowers)
		group, err := assessor.AssessGroup(studies, controlPanel, landfall, metric)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := litmus.StudyOnly(studies.MustSeries(sonTowers[0]), landfall, metric, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", metric)
		fmt.Printf("  study-only (1 SON tower):  %-12s  (the hurricane's absolute hit)\n", naive.Impact)
		fmt.Printf("  litmus group vote:         %-12s  votes: %d improvement / %d no-impact / %d degradation\n",
			group.Overall, group.Votes[kpi.Improvement], group.Votes[kpi.NoImpact], group.Votes[kpi.Degradation])
	}
	fmt.Println("\nConclusion (as in the paper): despite the absolute degradation, SON towers")
	fmt.Println("performed relatively better — supporting the network-wide SON rollout.")
}
