// Quickstart: assess a change from raw KPI series with the Litmus robust
// spatial regression.
//
// The scenario is the paper's core setting in miniature: a study cell
// tower gets a configuration change halfway through the observation
// window; a storm degrades the whole region at the same time. Study-only
// analysis blames the change for the storm; Litmus, comparing against
// the co-degraded control towers, reads it correctly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/kpi"

	litmus "repro"
)

func main() {
	const (
		days      = 28 // 14 before + 14 after the change
		perDay    = 4  // 6-hourly KPI buckets
		controls  = 10 // control towers
		changeDay = 14
	)
	start := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	ix := litmus.NewIndex(start, 6*time.Hour, days*perDay)
	changeAt := start.AddDate(0, 0, changeDay)

	// Synthesize voice retainability for one study tower and its control
	// group. All towers share a regional state (spatial correlation, the
	// property Litmus exploits); from the change time on, a storm drags
	// everyone down by ~1.5 percentage points, while the change itself
	// improves the study tower by 1 point.
	rng := rand.New(rand.NewSource(7))
	regional := make([]float64, ix.N)
	for i := 1; i < ix.N; i++ {
		regional[i] = 0.8*regional[i-1] + 0.002*rng.NormFloat64()
	}
	storm := func(i int) float64 {
		if ix.TimeAt(i).Before(changeAt) {
			return 0
		}
		return -0.015
	}
	tower := func(base, sens, changeGain float64) litmus.Series {
		vals := make([]float64, ix.N)
		for i := range vals {
			vals[i] = base + sens*(regional[i]+storm(i)) + 0.002*rng.NormFloat64()
			if !ix.TimeAt(i).Before(changeAt) {
				vals[i] += changeGain
			}
		}
		return litmus.NewSeries(ix, vals)
	}

	study := tower(0.975, 1.0, +0.010) // the change helps by 1 point
	panel := litmus.NewPanel(ix)
	for c := 0; c < controls; c++ {
		sens := 0.8 + 0.04*float64(c) // heterogeneous factor response
		panel.Add(fmt.Sprintf("control-%d", c+1), tower(0.975, sens, 0))
	}

	assessor := litmus.MustNewAssessor(litmus.Config{})
	res, err := assessor.AssessElement("study-tower", study, panel, changeAt, kpi.VoiceRetainability)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := litmus.StudyOnly(study, changeAt, kpi.VoiceRetainability, 0.05)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("change under test: config change at the study tower (true effect: +1.0pp)")
	fmt.Println("confounder:        regional storm from the change time on (-1.5pp everywhere)")
	fmt.Println()
	fmt.Printf("study-only reading:  %v  <- blames the storm on the change\n", naive)
	fmt.Printf("litmus reading:      %v  <- the relative improvement\n", res.Verdict)
	fmt.Printf("pre-change fit R²:   %.3f across %d sampling iterations\n", res.FitR2, assessor.Config().Iterations)
}
