# Build/verify targets for Litmus. `make ci` is what the GitHub Actions
# workflow runs: vet, build, the full suite under the race detector
# (exercising the assessment worker pool), and the fuzz seed corpora.

GO ?= go

.PHONY: ci vet build test race fuzz-seed bench bench-workers clean

ci: vet build test race fuzz-seed

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector must stay clean over the worker pool: the
# equivalence and concurrent-use tests drive every fan-out path.
race:
	$(GO) test -race ./...

# Replay the committed fuzz seed corpora as unit tests (no fuzzing
# engine; catches regressions in the never-panic contracts). Use
# `go test -fuzz=FuzzReadSeries ./cmd/litmus` etc. for real fuzzing.
fuzz-seed:
	$(GO) test ./cmd/litmus ./internal/stats -run '^Fuzz'

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# The parallel-engine scaling table recorded in EXPERIMENTS.md.
bench-workers:
	$(GO) test -bench 'WorkerScaling|AssessElementWorkers' -run '^$$' .

clean:
	$(GO) clean ./...
