# Build/verify targets for Litmus. `make ci` is what the GitHub Actions
# workflow runs: vet, build, the full suite under the race detector
# (exercising the assessment worker pool), and the fuzz seed corpora.

GO ?= go

.PHONY: ci vet lint build test race race-obs chaos chaos-cluster fuzz-seed eval-sweep bench bench-workers bench-obs bench-json serve-smoke crash-smoke bench-serve bench-batch bench-shard clean

ci: vet build test race chaos fuzz-seed

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck and govulncheck are optional
# locally (CI installs them); the target skips whichever is missing
# rather than failing on a lean toolchain.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector must stay clean over the worker pool: the
# equivalence and concurrent-use tests drive every fan-out path.
race:
	$(GO) test -race ./...

# Focused race run over the observability layer: the concurrent
# metrics-registry and scope tests plus the instrumented pipeline.
race-obs:
	$(GO) test -race ./internal/obs
	$(GO) test -race -run 'TestAssessChangeInstrumentedEquivalence' .

# Chaos suite under the race detector: every fault injector through the
# pipeline (result or typed Degraded reason, clean inputs bit-identical
# to the golden fixture, same fault seed identical at every worker
# count), the broken-data panic audit, and the serve-layer hardening
# tests.
chaos:
	$(GO) test -race -run 'Chaos|Degrad|Fault|Panic|Retr' ./...

# Cluster chaos suite under the race detector: three real service
# nodes behind deterministic netchaos TCP fault proxies, driven through
# the resilient router while latency, drip, reset, stall, partition,
# and kill episodes are applied link by link. Zero requests lost under
# any single-node fault, every completed answer byte-identical to the
# clean cluster's, hedging bounds the slow-node p99, and each proxy's
# realized fault schedule reproduces from (spec, seed, link). Writes
# CHAOS_CLUSTER.json — the per-scenario stats artifact CI uploads.
chaos-cluster:
	LITMUS_CLUSTER_CHAOS=1 LITMUS_CLUSTER_CHAOS_OUT=$(CURDIR)/CHAOS_CLUSTER.json \
		$(GO) test -race -run TestClusterChaos -count=1 -v -timeout 20m ./internal/serve/shard
	@echo wrote CHAOS_CLUSTER.json

# Replay the committed fuzz seed corpora as unit tests (no fuzzing
# engine; catches regressions in the never-panic contracts). Use
# `go test -fuzz=FuzzReadSeries ./cmd/litmus` etc. for real fuzzing.
fuzz-seed:
	$(GO) test ./cmd/litmus ./internal/stats ./internal/faults ./internal/serve/journal ./internal/netchaos -run '^Fuzz'

# Scaled-down fault sweep under the race detector: the Table-4 grid
# plus the adversarial scenario families at corruption rates
# 0/0.01/0.05/0.1/0.2, rendered as a table and written to EVAL_6.json
# (accuracy / FPR / FNR / degraded fraction per scenario × rate) — the
# robustness-curve artifact CI uploads. `-scale 0.05` keeps it cheap;
# drop the flag for the full 9110-cases-per-rate sweep.
eval-sweep:
	$(GO) run -race ./cmd/litmus-eval -sweep -scale 0.05
	@echo wrote EVAL_6.json

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# The parallel-engine scaling table recorded in EXPERIMENTS.md.
bench-workers:
	$(GO) test -bench 'WorkerScaling|AssessElementWorkers' -run '^$$' .

# Observability overhead: instrumented vs nil-scope group assessment.
bench-obs:
	$(GO) test -bench 'AssessGroupInstrumented' -benchmem -run '^$$' .

# Machine-readable snapshot of the assessment-kernel benchmarks
# (ns/op, B/op, allocs/op per benchmark) — the artifact CI uploads so
# kernel performance is reviewable per commit. Short -benchtime keeps it
# cheap; use `make bench` for full-length local numbers.
bench-json:
	$(GO) test -bench 'AssessElement$$|AssessElementWorkers|WorkerScaling|QRReuse|Median$$' \
		-benchmem -benchtime 0.2s -run '^$$' . ./internal/linalg ./internal/stats \
		| $(GO) run ./cmd/benchjson -o BENCH_3.json
	@echo wrote BENCH_3.json

# End-to-end smoke test of the assessment service binary: builds
# cmd/litmus-serve, boots it on an ephemeral port, submits the golden
# scenario through the typed client and asserts the decision (and exact
# bytes) match testdata/golden_assessment.json, then SIGTERMs and
# requires a clean drain.
# The smoke run records flight segments into flight-smoke/ (decoded and
# asserted by the test itself, uploaded as a CI artifact) — inspect a
# local run with `go run ./cmd/litmus-rec -dir flight-smoke`.
serve-smoke:
	LITMUS_SERVE_SMOKE=1 LITMUS_SERVE_SMOKE_FLIGHT_DIR=$(CURDIR)/flight-smoke $(GO) test -run TestServeSmoke -count=1 -v ./cmd/litmus-serve

# Kill -9 crash-recovery smoke: boots litmus-serve with -journal-dir,
# pours in concurrent requests, SIGKILLs mid-run, restarts on the same
# journal, and requires every result a client held before the crash to
# be served byte-identical after replay — zero completed work lost.
crash-smoke:
	LITMUS_CRASH_SMOKE=1 $(GO) test -run TestCrashRecoverySmoke -count=1 -v ./cmd/litmus-serve

# Serving-layer latency/throughput snapshot (p50/p90/p99, jobs/sec,
# cache hit counters) — the BENCH_4.json artifact CI uploads.
bench-serve:
	$(GO) run ./cmd/litmus-loadgen -n 200 -c 8 -o BENCH_4.json
	@echo wrote BENCH_4.json

# Batch-vs-singles amortization proof. First the engine-level benchmark
# pair (AssessChangelog vs per-change AssessChangeContext) through
# cmd/benchjson for trend-spotting, then the full service-path run: a
# 1000-entry changelog as one POST /v1/assess/batch vs 1000 sequential
# singles, written to BENCH_8.json — the target (wall ≤ 0.35×,
# allocations ≤ 0.25×) is enforced by the run's exit code.
bench-batch:
	$(GO) test -bench 'BatchChangelog|SequentialSingles' -benchmem -benchtime 1x -run '^$$' . \
		| $(GO) run ./cmd/benchjson -o BENCH_8_engine.json
	$(GO) run ./cmd/litmus-loadgen -batch -o BENCH_8.json
	@echo wrote BENCH_8.json and BENCH_8_engine.json

# Sharded-serving proof: the same workload (5 rounds over 120 distinct
# requests) routed by consistent-hashed digest against 1 vs 3 in-process
# nodes, each with an 80-entry cache. The single node LRU-thrashes and
# recomputes every round; the 3-node ring holds the whole working set.
# Written to BENCH_9.json — the targets (≥ 2.2× throughput, every digest
# computed on exactly one node, zero failovers) are enforced by the
# run's exit code.
bench-shard:
	$(GO) run ./cmd/litmus-loadgen -shard -o BENCH_9.json
	@echo wrote BENCH_9.json

clean:
	$(GO) clean ./...
