// Command litmus-figs regenerates the data behind every time-series
// figure of the paper (Figs. 1, 3–11) and renders it either as terminal
// sparkline summaries or as CSV files for plotting.
//
// Usage:
//
//	litmus-figs                 # sparkline summaries of all figures
//	litmus-figs -fig 10         # one figure
//	litmus-figs -csv ./figdata  # write fig<N>.csv files
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"repro/internal/figures"
	"repro/internal/obscli"
	"repro/internal/report"
)

// logger carries the command's structured diagnostics (stderr); figure
// summaries and CSVs stay on stdout and disk. Initialized from
// -log-format/-log-level.
var logger *slog.Logger

func main() {
	var (
		figID  = flag.String("fig", "all", `figure to regenerate ("1", "3".."11", or "all")`)
		csvDir = flag.String("csv", "", "write CSV files to this directory instead of printing summaries")
		seed   = flag.Int64("seed", 0, "world seed (0 = default)")
	)
	logFlags := obscli.RegisterLog("text")
	flag.Parse()
	var err error
	logger, err = logFlags.Logger("litmus-figs")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus-figs:", err)
		os.Exit(2)
	}

	cfg := figures.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var figs []figures.Figure
	if *figID == "all" {
		all, err := figures.All(cfg)
		if err != nil {
			fatal(err)
		}
		figs = all
	} else {
		f, err := figures.ByID(cfg, *figID)
		if err != nil {
			fatal(err)
		}
		figs = []figures.Figure{f}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
		for _, f := range figs {
			path := filepath.Join(*csvDir, "fig"+f.ID+".csv")
			out, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := report.WriteFigureCSV(out, f); err != nil {
				out.Close()
				fatal(err)
			}
			if err := out.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d series)\n", path, len(f.Series))
		}
		return
	}
	for i, f := range figs {
		if i > 0 {
			fmt.Println()
		}
		if err := report.WriteFigureSummary(os.Stdout, f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
