// Command benchjson converts `go test -bench` text output into a stable
// JSON document mapping benchmark name → measured values (ns/op,
// allocs/op, B/op, iterations). CI runs the short benchmark suite through
// it (`make bench-json`) and uploads the result, so performance of the
// assessment kernel is tracked as a reviewable artifact rather than
// scraped from logs.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -o BENCH.json
//
// Lines that are not benchmark results (package headers, PASS/ok
// trailers) are ignored, so the whole `go test` stream can be piped in
// unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result holds one benchmark's measurements. Fields mirror the testing
// package's standard -bench/-benchmem columns; absent columns are zero.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// parseBench extracts benchmark results from a `go test -bench` stream.
// The accepted line shape is
//
//	Benchmark<Name> <iterations> <value> <unit> [<value> <unit>]...
//
// Names are kept verbatim, including any GOMAXPROCS suffix: stripping it
// is ambiguous against sub-benchmark names that legitimately end in -N
// (e.g. WorkerScaling/workers-4), and a stable runner configuration keeps
// the keys comparable across runs anyway.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." chatter, not a result line
		}
		name := fields[0]
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

func run(in io.Reader, outPath string) error {
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found on input")
	}
	// encoding/json marshals map keys in sorted order, so the document is
	// deterministic for a given benchmark set.
	doc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(outPath, doc, 0o644)
}

func main() {
	outPath := flag.String("o", "-", "output file (default stdout)")
	flag.Parse()
	if err := run(os.Stdin, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
