package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAssessElement        	    2030	   1027368 ns/op	   95598 B/op	      85 allocs/op
BenchmarkWorkerScaling/workers-1         	     531	   4322043 ns/op	 1715539 B/op	     695 allocs/op
BenchmarkQRReuse/factor-once          	   82207	     14144 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	24.973s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %v", len(got), got)
	}
	ae := got["BenchmarkAssessElement"]
	if ae.Iterations != 2030 || ae.NsPerOp != 1027368 || ae.BytesPerOp != 95598 || ae.AllocsPerOp != 85 {
		t.Errorf("AssessElement = %+v", ae)
	}
	// Names must be kept verbatim — in particular a sub-benchmark ending
	// in -N must not be mistaken for a GOMAXPROCS suffix and truncated.
	if _, ok := got["BenchmarkWorkerScaling/workers-1"]; !ok {
		t.Errorf("sub-benchmark name not preserved: %v", got)
	}
	if _, ok := got["BenchmarkQRReuse/factor-once"]; !ok {
		t.Errorf("factor-once result missing: %v", got)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok  \trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %d results from non-benchmark input", len(got))
	}
}
