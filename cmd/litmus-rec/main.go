// Command litmus-rec decodes flight-recorder segments (the rotating
// binary files litmus-serve writes under -flight-dir) and renders them
// for humans: an overview of the recording, per-metric sparkline
// timelines, and a long-form CSV dump for plotting. See
// internal/obs/flightrec for the segment format.
//
// Usage:
//
//	litmus-rec -dir flight                     # summary + timelines
//	litmus-rec -dir flight -metric litmus_jobs_completed_total
//	litmus-rec -dir flight -csv > flight.csv   # timestamp,metric,kind,value
//	litmus-rec flight/flight-00000001.frec     # specific segment files
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/internal/obs/flightrec"
	"repro/internal/obscli"
	"repro/internal/report"
)

// logger carries the command's structured diagnostics (stderr); decoded
// output stays on stdout. Initialized from -log-format/-log-level.
var logger *slog.Logger

func main() {
	var (
		dir     = flag.String("dir", "", `segment directory (default "flight" when no files are given)`)
		metrics = flag.String("metric", "", "comma-separated metric names to render (empty = all)")
		csvOut  = flag.Bool("csv", false, "dump the recording as CSV on stdout instead of tables")
		width   = flag.Int("width", 72, "sparkline width in characters")
	)
	logFlags := obscli.RegisterLog("text")
	flag.Parse()
	var err error
	logger, err = logFlags.Logger("litmus-rec")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus-rec:", err)
		os.Exit(2)
	}

	segs, err := loadSegments(*dir, flag.Args())
	if err != nil {
		fatal(err)
	}

	var names []string
	if *metrics != "" {
		for _, n := range strings.Split(*metrics, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	if *csvOut {
		if err := report.WriteFlightCSV(os.Stdout, segs, names); err != nil {
			fatal(err)
		}
		return
	}
	if err := report.WriteFlightSummary(os.Stdout, segs); err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := report.WriteFlightTimeline(os.Stdout, segs, names, *width); err != nil {
		fatal(err)
	}
}

// loadSegments decodes either the explicitly named segment files (in the
// given order) or every segment in dir, oldest first. Passing both is a
// usage error; passing neither reads the litmus-serve default "flight".
func loadSegments(dir string, files []string) ([]*flightrec.Segment, error) {
	if dir != "" && len(files) > 0 {
		return nil, fmt.Errorf("pass -dir or segment files, not both")
	}
	if len(files) == 0 {
		if dir == "" {
			dir = "flight"
		}
		return flightrec.DecodeDir(dir)
	}
	segs := make([]*flightrec.Segment, 0, len(files))
	for _, f := range files {
		seg, err := flightrec.DecodeFile(f)
		if err != nil {
			return nil, err
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
