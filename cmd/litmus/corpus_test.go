package main

// Seed-corpus generator for the CSV-loader fuzz targets. The corpus is
// built from the internal/faults vocabulary — the ways production
// telemetry actually breaks (reset ramps, half-empty rows, duplicated
// and truncated panel columns) — rendered through the CSV conventions
// the loaders speak (RFC3339 timestamps, NaN as empty cell), and
// committed under testdata/fuzz/ in go-fuzz corpus format so plain
// `go test` replays every entry. Regenerate after changing the fault
// vocabulary or the CSV dialect with:
//
//	go test ./cmd/litmus -run TestFuzzCorpus -update

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/timeseries"
)

var updateCorpus = flag.Bool("update", false, "rewrite the committed fuzz seed corpus")

// corpusEpoch matches the repo-wide synthetic epoch.
var corpusEpoch = time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)

func corpusIndex(n int) timeseries.Index {
	return timeseries.NewIndex(corpusEpoch, 6*time.Hour, n)
}

func corpusSeries(n int) timeseries.Series {
	v := make([]float64, n)
	for i := range v {
		v[i] = 0.95 + 0.03*math.Sin(float64(i)/4)
	}
	return timeseries.NewSeries(corpusIndex(n), v)
}

func corpusPanel(n, cols int) *timeseries.Panel {
	p := timeseries.NewPanel(corpusIndex(n))
	for c := 0; c < cols; c++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = 0.9 + 0.05*math.Cos(float64(i)/3+float64(c))
		}
		p.Add(string(rune('a'+c)), timeseries.NewSeries(corpusIndex(n), v))
	}
	return p
}

// faultedSeries applies one fault kind to the base series, scanning
// element ids until the (seed, kind, id) selection actually corrupts —
// everything deterministic, exported API only.
func faultedSeries(t *testing.T, kind faults.Kind, rate float64, seed int64) timeseries.Series {
	t.Helper()
	s := faults.New(seed, rate, kind)
	base := corpusSeries(24)
	for i := 0; i < 10000; i++ {
		out := s.Series(fmt.Sprintf("el-%d", i), base)
		for j := range out.Values {
			same := out.Values[j] == base.Values[j] ||
				(math.IsNaN(out.Values[j]) && math.IsNaN(base.Values[j]))
			if !same {
				return out
			}
		}
	}
	t.Fatalf("no element affected by %v at rate %v", kind, rate)
	return timeseries.Series{}
}

// faultedPanel applies a fault set to the base panel, scanning seeds for
// one that corrupts without emptying the panel.
func faultedPanel(t *testing.T, kind faults.Kind, rate float64) *timeseries.Panel {
	t.Helper()
	base := corpusPanel(24, 4)
	for seed := int64(1); seed < 1000; seed++ {
		out := faults.New(seed, rate, kind).Panel(base)
		if out.Len() == 0 || out.Len() > base.Len() {
			continue
		}
		if panelsDiffer(base, out) {
			return out
		}
	}
	t.Fatalf("no seed makes %v at rate %v corrupt the panel", kind, rate)
	return nil
}

func panelsDiffer(a, b *timeseries.Panel) bool {
	aIDs, bIDs := a.IDs(), b.IDs()
	if len(aIDs) != len(bIDs) {
		return true
	}
	for i, id := range aIDs {
		if bIDs[i] != id {
			return true
		}
		av, bv := a.MustSeries(id).Values, b.MustSeries(id).Values
		for j := range av {
			if av[j] != bv[j] && !(math.IsNaN(av[j]) && math.IsNaN(bv[j])) {
				return true
			}
		}
	}
	return false
}

// seriesCSV renders a series in the loader's dialect: RFC3339
// timestamps, NaN as the empty cell.
func seriesCSV(s timeseries.Series) []byte {
	var b strings.Builder
	b.WriteString("timestamp,value\n")
	for i, v := range s.Values {
		b.WriteString(s.Index.TimeAt(i).Format(time.RFC3339))
		b.WriteByte(',')
		if !math.IsNaN(v) {
			fmt.Fprintf(&b, "%g", v)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func panelCSV(p *timeseries.Panel) []byte {
	var b strings.Builder
	b.WriteString("timestamp")
	for _, id := range p.IDs() {
		b.WriteByte(',')
		b.WriteString(id)
	}
	b.WriteByte('\n')
	for i := 0; i < p.Index().N; i++ {
		b.WriteString(p.Index().TimeAt(i).Format(time.RFC3339))
		for _, id := range p.IDs() {
			b.WriteByte(',')
			if v := p.MustSeries(id).Values[i]; !math.IsNaN(v) {
				fmt.Fprintf(&b, "%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// corpusEntries builds the full corpus: entry name → CSV bytes.
func corpusEntries(t *testing.T) (series, panel map[string][]byte) {
	t.Helper()
	series = map[string][]byte{
		"faults-reset-ramp":   seriesCSV(faultedSeries(t, faults.Reset, 0.4, 3)),
		"faults-half-missing": seriesCSV(faultedSeries(t, faults.Missing, 0.5, 5)),
		"faults-gap":          seriesCSV(faultedSeries(t, faults.Gap, 0.3, 7)),
		"faults-spike":        seriesCSV(faultedSeries(t, faults.Spike, 0.3, 9)),
		"faults-all-missing":  seriesCSV(faultedSeries(t, faults.Missing, 1, 11)),
	}
	panel = map[string][]byte{
		"faults-dupcol":    panelCSV(faultedPanel(t, faults.DupCol, 1)),
		"faults-shorthist": panelCSV(faultedPanel(t, faults.ShortHist, 1)),
		"faults-dropcol":   panelCSV(faultedPanel(t, faults.DropCol, 0.5)),
		"faults-gap-rows":  panelCSV(faultedPanel(t, faults.Gap, 0.9)),
	}
	return series, panel
}

// encodeCorpusFile renders bytes in the `go test fuzz v1` corpus format.
func encodeCorpusFile(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// TestFuzzCorpusCommitted checks the committed seed corpus is exactly
// what the generator produces (run with -update to regenerate), and that
// every entry round-trips through the loaders without panicking.
func TestFuzzCorpusCommitted(t *testing.T) {
	series, panel := corpusEntries(t)
	check := func(dir string, entries map[string][]byte) {
		for name, data := range entries {
			path := filepath.Join("testdata", "fuzz", dir, name)
			want := encodeCorpusFile(data)
			if *updateCorpus {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("%v (regenerate with -update)", err)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s is stale: committed corpus differs from the faults vocabulary (regenerate with -update)", path)
			}
		}
	}
	check("FuzzReadSeries", series)
	check("FuzzReadPanel", panel)
	if t.Failed() || *updateCorpus {
		return
	}
	// The loaders must survive every corpus entry — parse or error,
	// never panic; a parsed result obeys the loader invariants.
	for name, data := range series {
		if s, err := readSeries(bytes.NewReader(data)); err == nil && s.Len() < 2 {
			t.Errorf("series entry %s parsed to %d rows", name, s.Len())
		}
	}
	for name, data := range panel {
		if p, err := readPanel(bytes.NewReader(data)); err == nil && p.Len() < 1 {
			t.Errorf("panel entry %s parsed to empty panel", name)
		}
	}
}
