package main

// Changelog mode (-changelog): assess every entry of a JSON changelog
// against the same study/controls CSV pair. Each entry contributes one
// change time; the study series is split at that time and regressed
// against the control panel exactly as in single-change mode, but
// through the pipeline so -changelog-batch can route the whole file
// through Pipeline.AssessChangelog — the batch path that shares control
// selection, panel assembly and before-window factorizations across
// entries with equal signatures. Batch and loop results are identical;
// only the cost differs.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/changelog"
	"repro/internal/control"
	"repro/internal/netsim"
	"repro/internal/obs"

	litmus "repro"
)

// studyElementID is the synthetic element ID the study CSV column is
// registered under — in the network, the provider and fault injection.
const studyElementID = "study"

// changelogEntry is one entry of the -changelog JSON file.
type changelogEntry struct {
	// ID is the change ticket identifier (required, unique).
	ID string `json:"id"`
	// At is the change execution time, RFC 3339 (required).
	At string `json:"at"`
	// Type is the change type name (optional; default config-change).
	Type string `json:"type,omitempty"`
	// Description is free-form ticket text (optional).
	Description string `json:"description,omitempty"`
}

// loadChangelog parses a -changelog file: a JSON array of entries.
func loadChangelog(path string) ([]*changelog.Change, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []changelogEntry
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: changelog has no entries", path)
	}
	seen := map[string]bool{}
	changes := make([]*changelog.Change, 0, len(entries))
	for i, e := range entries {
		if e.ID == "" {
			return nil, fmt.Errorf("%s: entry %d has no id", path, i)
		}
		if seen[e.ID] {
			return nil, fmt.Errorf("%s: duplicate change id %q", path, e.ID)
		}
		seen[e.ID] = true
		at, err := time.Parse(time.RFC3339, e.At)
		if err != nil {
			return nil, fmt.Errorf("%s: entry %s: invalid at %q: %v", path, e.ID, e.At, err)
		}
		ct := changelog.ConfigChange
		if e.Type != "" {
			ct, err = changelog.ParseType(e.Type)
			if err != nil {
				return nil, fmt.Errorf("%s: entry %s: %v", path, e.ID, err)
			}
		}
		changes = append(changes, &changelog.Change{
			ID:          e.ID,
			Type:        ct,
			Description: e.Description,
			Elements:    []string{studyElementID},
			At:          at,
		})
	}
	return changes, nil
}

// csvNetwork wraps the loaded CSV columns as a flat synthetic network —
// the study element plus one element per control column, all the same
// kind, so a same-kind predicate selects exactly the CSV's control set.
func csvNetwork(controls *litmus.Panel) (*netsim.Network, error) {
	net := netsim.NewNetwork()
	net.Add(&netsim.Element{ID: studyElementID, Kind: netsim.NodeB})
	for _, id := range controls.IDs() {
		if id == studyElementID {
			return nil, fmt.Errorf("controls file has a column named %q, which collides with the study element", studyElementID)
		}
		net.Add(&netsim.Element{ID: id, Kind: netsim.NodeB})
	}
	return net, nil
}

// runChangelog assesses every changelog entry and prints one verdict
// line per entry. It returns true when any entry failed.
func runChangelog(o *options, scope *obs.Scope, metric litmus.KPI, assessor *litmus.Assessor, study litmus.Series, controls *litmus.Panel) (failed bool) {
	changes, err := loadChangelog(o.changelogPath)
	if err != nil {
		fatalf("loading changelog: %v", err)
	}
	net, err := csvNetwork(controls)
	if err != nil {
		fatalf("%v", err)
	}
	byID := map[string]litmus.Series{studyElementID: study}
	for _, id := range controls.IDs() {
		byID[id] = controls.MustSeries(id)
	}
	provider := litmus.ProviderFunc(func(id string, _ litmus.KPI) (litmus.Series, bool) {
		s, ok := byID[id]
		return s, ok
	})
	p := &litmus.Pipeline{
		Network:          net,
		Provider:         provider,
		Assessor:         assessor,
		ControlPredicate: control.SameKind(),
		MaxControls:      controls.Len(),
		Obs:              scope,
	}
	kpis := []litmus.KPI{metric}
	ctx := context.Background()

	mode := "per-entry loop"
	if o.changelogBatch {
		mode = "batch (shared panels and factorizations)"
	}
	fmt.Printf("changelog: %d entries, %s, window %d days\n", len(changes), mode, o.windowDays)

	results := make([]*litmus.ChangeAssessment, len(changes))
	errs := make([]error, len(changes))
	if o.changelogBatch {
		batch, err := p.AssessChangelog(ctx, changes, kpis, o.windowDays)
		if err != nil {
			fatalf("batch assessment: %v", err)
		}
		copy(results, batch.Results)
		copy(errs, batch.Errors)
		fmt.Printf("  amortization: %d panel assemblies shared, %d factorizations reused\n",
			batch.PanelsShared, batch.FactorizationsReused)
	} else {
		for i, c := range changes {
			results[i], errs[i] = p.AssessChangeContext(ctx, c, kpis, o.windowDays)
		}
	}

	for i, c := range changes {
		at := c.At.UTC().Format(time.RFC3339)
		if errs[i] != nil {
			fmt.Printf("%-16s @ %s  error: %v\n", c.ID, at, errs[i])
			failed = true
			continue
		}
		res := results[i]
		verdict := "unassessed"
		if gr, ok := res.PerKPI[metric]; ok {
			if len(gr.PerElement) > 0 {
				verdict = gr.PerElement[0].Verdict.String()
			} else {
				verdict = gr.Overall.String()
			}
		}
		suffix := ""
		if res.Degraded {
			suffix = "  [degraded]"
		}
		fmt.Printf("%-16s @ %s  %s  decision=%s%s\n", c.ID, at, verdict, res.Decision, suffix)
	}
	return failed
}
