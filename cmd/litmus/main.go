// Command litmus assesses the service-performance impact of a network
// change from CSV time-series: the study element's KPI series and the
// control group's series, split at the change time, are compared with
// the Litmus robust spatial regression (plus the study-only and
// Difference-in-Differences baselines for contrast).
//
// Usage:
//
//	litmus -study study.csv -controls controls.csv \
//	       -change 2012-06-15T00:00:00Z -kpi voice-retainability
//
// study.csv has a header "timestamp,value"; controls.csv has
// "timestamp,<id1>,<id2>,...". Timestamps must be RFC 3339 on a regular
// grid. Use cmd/litmus-sim to generate a matching pair.
//
// Changelog mode: -changelog changes.json assesses every entry of a
// JSON changelog (one change time per entry) against the same
// study/controls pair — one verdict line per entry. Adding
// -changelog-batch routes the entries through the engine's batch path
// (Pipeline.AssessChangelog), which shares control selection, panel
// assembly and before-window factorizations across entries with equal
// signatures; results are bit-identical to the per-entry loop.
//
// Observability: -trace out.json writes the assessment's span tree as
// JSON, -metrics prints a flame summary, per-stage timing table and a
// Prometheus-text metrics dump on exit, and -pprof addr serves
// net/http/pprof (plus expvar under /debug/vars) for live profiling.
// Without these flags the engine runs its zero-overhead path; results
// are bit-identical either way.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/kpi"
	"repro/internal/obscli"

	litmus "repro"
)

// logger carries the command's structured diagnostics (stderr); program
// output stays on stdout. Initialized from -log-format/-log-level.
var logger *slog.Logger

// options holds the parsed command line. Flag registration is split from
// main so tests can drive parsing and validation on a private FlagSet
// (same pattern as cmd/litmus-eval).
type options struct {
	studyPath      string
	controlsPath   string
	changeStr      string
	changelogPath  string
	changelogBatch bool
	kpiName        string
	alpha          float64
	floor          float64
	iterations     int
	fraction       float64
	workers        int
	windowDays     int
	diagnose       bool
	faultSpec      string
	faultSeed      int64
	faultRate      float64

	// changeAt is the parsed form of changeStr, filled by validate in
	// single-change mode.
	changeAt time.Time
}

func registerOptions(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.studyPath, "study", "", "CSV file with the study element's series (timestamp,value)")
	fs.StringVar(&o.controlsPath, "controls", "", "CSV file with control series (timestamp,id1,id2,...)")
	fs.StringVar(&o.changeStr, "change", "", "change time, RFC 3339 (single-change mode)")
	fs.StringVar(&o.changelogPath, "changelog", "", "JSON changelog file: assess every entry against the same study/controls pair")
	fs.BoolVar(&o.changelogBatch, "changelog-batch", false, "route -changelog entries through the batch path (shared panels and factorizations) instead of a per-entry loop; results are identical")
	fs.StringVar(&o.kpiName, "kpi", "voice-retainability", "KPI name (controls direction semantics)")
	fs.Float64Var(&o.alpha, "alpha", 0.05, "two-sided significance level")
	fs.Float64Var(&o.floor, "floor", 0, "practical-significance floor in KPI units (0 disables)")
	fs.IntVar(&o.iterations, "iterations", 0, "sampling iterations (0 = default 50)")
	fs.Float64Var(&o.fraction, "fraction", 0, "control sample fraction per iteration (0 = default 2/3)")
	fs.IntVar(&o.workers, "workers", 0, "assessment worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	fs.IntVar(&o.windowDays, "window-days", 14, "changelog mode: before/after assessment window in days")
	fs.BoolVar(&o.diagnose, "diagnose", false, "also print per-control quality diagnostics (single-change mode)")
	fs.StringVar(&o.faultSpec, "faults", "", "inject data faults after loading: name[=rate],... or \"all\" (names: "+strings.Join(faults.KindNames(), ", ")+")")
	fs.Int64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed (same seed, same corruption)")
	fs.Float64Var(&o.faultRate, "fault-rate", 0, "default rate for -faults entries without an explicit rate (0 = "+fmt.Sprint(faults.DefaultRate)+")")
	return o
}

// validate rejects inconsistent flag combinations and parses the change
// time. It does not touch the filesystem — file errors surface at load
// time, not here.
func (o *options) validate() error {
	if o.studyPath == "" || o.controlsPath == "" {
		return fmt.Errorf("-study and -controls are required")
	}
	switch {
	case o.changeStr == "" && o.changelogPath == "":
		return fmt.Errorf("need -change (single-change mode) or -changelog (changelog mode)")
	case o.changeStr != "" && o.changelogPath != "":
		return fmt.Errorf("-change and -changelog are mutually exclusive")
	}
	if o.changelogBatch && o.changelogPath == "" {
		return fmt.Errorf("-changelog-batch requires -changelog")
	}
	if o.diagnose && o.changelogPath != "" {
		return fmt.Errorf("-diagnose applies to single-change mode only")
	}
	if o.changelogPath != "" && o.windowDays < 2 {
		return fmt.Errorf("-window-days %d too short (need at least 2)", o.windowDays)
	}
	if o.changeStr != "" {
		at, err := time.Parse(time.RFC3339, o.changeStr)
		if err != nil {
			return fmt.Errorf("invalid -change %q: %v", o.changeStr, err)
		}
		o.changeAt = at
	}
	return nil
}

func main() {
	o := registerOptions(flag.CommandLine)
	obsFlags := obscli.Register()
	logFlags := obscli.RegisterLog("text")
	flag.Parse()
	var err error
	logger, err = logFlags.Logger("litmus")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		flag.Usage()
		os.Exit(2)
	}
	metric, err := kpi.Parse(o.kpiName)
	if err != nil {
		fatalf("%v", err)
	}

	study, err := loadSingleSeriesCSV(o.studyPath)
	if err != nil {
		fatalf("loading study series: %v", err)
	}
	controls, err := loadPanelCSV(o.controlsPath)
	if err != nil {
		fatalf("loading controls: %v", err)
	}
	if !study.Index.Equal(controls.Index()) {
		fatalf("study and control files are on different time grids")
	}

	// Optional fault injection: corrupt the loaded data deterministically
	// before assessment, to demonstrate (and let operators rehearse) the
	// engine's graceful degradation on broken inputs.
	fset, err := faults.Parse(o.faultSpec, o.faultSeed, o.faultRate)
	if err != nil {
		fatalf("%v", err)
	}
	if fset.Active() {
		fmt.Printf("fault injection: %s (seed %d)\n", fset, o.faultSeed)
		if fset.DropsElement(studyElementID) {
			fatalf("fault injection dropped the study element; nothing to assess")
		}
		study = fset.Series(studyElementID, study)
		controls = fset.Panel(controls)
		if controls.Len() == 0 {
			fatalf("fault injection dropped every control element; nothing to regress against")
		}
	}

	assessor, err := litmus.NewAssessor(litmus.Config{
		Alpha:          o.alpha,
		EffectFloor:    o.floor,
		Iterations:     o.iterations,
		SampleFraction: o.fraction,
		Workers:        o.workers,
	})
	if err != nil {
		fatalf("%v", err)
	}
	// nil scope (no -trace/-metrics/-pprof) keeps the zero-overhead
	// path; the result is bit-identical either way.
	scope, err := obsFlags.Scope("litmus")
	if err != nil {
		fatalf("%v", err)
	}
	assessor = assessor.WithObserver(scope)

	if o.changelogPath != "" {
		failed := runChangelog(o, scope, metric, assessor, study, controls)
		if err := obsFlags.Report(os.Stdout, scope); err != nil {
			fatalf("writing observability report: %v", err)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	res, err := assessor.AssessElement(studyElementID, study, controls, o.changeAt, metric)
	if err != nil {
		// Degradations are data-caused and machine-classified; surface
		// the reason code so scripts can dispatch on it.
		if litmus.IsDegradation(err) {
			fatalf("assessment degraded (reason %s): %v", litmus.ReasonOf(err), err)
		}
		fatalf("assessment failed: %v", err)
	}
	fmt.Printf("litmus robust spatial regression: %s\n", res.Verdict)
	fmt.Printf("  pre-change fit R²: %.3f  (control group: %d elements)\n", res.FitR2, controls.Len())

	if so, err := litmus.StudyOnly(study, o.changeAt, metric, o.alpha); err == nil {
		fmt.Printf("study-group-only baseline:        %s\n", so)
	}
	if did, _, err := litmus.DiD(study, controls, o.changeAt, metric, o.alpha); err == nil {
		fmt.Printf("difference-in-differences:        %s\n", did)
	}

	if o.diagnose {
		d, err := litmus.DiagnoseControlsObserved(scope, study, controls, o.changeAt)
		if err != nil {
			fatalf("diagnostics failed: %v", err)
		}
		health := "healthy"
		if !d.Healthy() {
			health = "POORLY SELECTED (majority of controls are bad predictors)"
		}
		fmt.Printf("\ncontrol group diagnostics: joint R²=%.3f, %d/%d flagged — %s\n",
			d.JointR2, d.FlaggedCount, len(d.PerControl), health)
		for _, c := range d.PerControl {
			flag := ""
			if c.Flagged {
				flag = "  <- bad predictor"
			}
			fmt.Printf("  %-20s corr=%+.3f  r²=%.3f%s\n", c.ControlID, c.Correlation, c.UnivariateR2, flag)
		}
	}

	if err := obsFlags.Report(os.Stdout, scope); err != nil {
		fatalf("writing observability report: %v", err)
	}
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
