// Command litmus assesses the service-performance impact of a network
// change from CSV time-series: the study element's KPI series and the
// control group's series, split at the change time, are compared with
// the Litmus robust spatial regression (plus the study-only and
// Difference-in-Differences baselines for contrast).
//
// Usage:
//
//	litmus -study study.csv -controls controls.csv \
//	       -change 2012-06-15T00:00:00Z -kpi voice-retainability
//
// study.csv has a header "timestamp,value"; controls.csv has
// "timestamp,<id1>,<id2>,...". Timestamps must be RFC 3339 on a regular
// grid. Use cmd/litmus-sim to generate a matching pair.
//
// Observability: -trace out.json writes the assessment's span tree as
// JSON, -metrics prints a flame summary, per-stage timing table and a
// Prometheus-text metrics dump on exit, and -pprof addr serves
// net/http/pprof (plus expvar under /debug/vars) for live profiling.
// Without these flags the engine runs its zero-overhead path; results
// are bit-identical either way.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/kpi"
	"repro/internal/obscli"

	litmus "repro"
)

// logger carries the command's structured diagnostics (stderr); program
// output stays on stdout. Initialized from -log-format/-log-level.
var logger *slog.Logger

func main() {
	var (
		studyPath    = flag.String("study", "", "CSV file with the study element's series (timestamp,value)")
		controlsPath = flag.String("controls", "", "CSV file with control series (timestamp,id1,id2,...)")
		changeStr    = flag.String("change", "", "change time, RFC 3339")
		kpiName      = flag.String("kpi", "voice-retainability", "KPI name (controls direction semantics)")
		alpha        = flag.Float64("alpha", 0.05, "two-sided significance level")
		floor        = flag.Float64("floor", 0, "practical-significance floor in KPI units (0 disables)")
		iterations   = flag.Int("iterations", 0, "sampling iterations (0 = default 50)")
		fraction     = flag.Float64("fraction", 0, "control sample fraction per iteration (0 = default 2/3)")
		workers      = flag.Int("workers", 0, "assessment worker pool size (0 = GOMAXPROCS; results are identical for any value)")
		diagnose     = flag.Bool("diagnose", false, "also print per-control quality diagnostics")
		faultSpec    = flag.String("faults", "", "inject data faults after loading: name[=rate],... or \"all\" (names: "+strings.Join(faults.KindNames(), ", ")+")")
		faultSeed    = flag.Int64("fault-seed", 1, "fault-injection seed (same seed, same corruption)")
		faultRate    = flag.Float64("fault-rate", 0, "default rate for -faults entries without an explicit rate (0 = "+fmt.Sprint(faults.DefaultRate)+")")
	)
	obsFlags := obscli.Register()
	logFlags := obscli.RegisterLog("text")
	flag.Parse()
	var err error
	logger, err = logFlags.Logger("litmus")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		os.Exit(2)
	}
	if *studyPath == "" || *controlsPath == "" || *changeStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	changeAt, err := time.Parse(time.RFC3339, *changeStr)
	if err != nil {
		fatalf("invalid -change %q: %v", *changeStr, err)
	}
	metric, err := kpi.Parse(*kpiName)
	if err != nil {
		fatalf("%v", err)
	}

	study, err := loadSingleSeriesCSV(*studyPath)
	if err != nil {
		fatalf("loading study series: %v", err)
	}
	controls, err := loadPanelCSV(*controlsPath)
	if err != nil {
		fatalf("loading controls: %v", err)
	}
	if !study.Index.Equal(controls.Index()) {
		fatalf("study and control files are on different time grids")
	}

	// Optional fault injection: corrupt the loaded data deterministically
	// before assessment, to demonstrate (and let operators rehearse) the
	// engine's graceful degradation on broken inputs.
	fset, err := faults.Parse(*faultSpec, *faultSeed, *faultRate)
	if err != nil {
		fatalf("%v", err)
	}
	if fset.Active() {
		fmt.Printf("fault injection: %s (seed %d)\n", fset, *faultSeed)
		if fset.DropsElement("study") {
			fatalf("fault injection dropped the study element; nothing to assess")
		}
		study = fset.Series("study", study)
		controls = fset.Panel(controls)
		if controls.Len() == 0 {
			fatalf("fault injection dropped every control element; nothing to regress against")
		}
	}

	assessor, err := litmus.NewAssessor(litmus.Config{
		Alpha:          *alpha,
		EffectFloor:    *floor,
		Iterations:     *iterations,
		SampleFraction: *fraction,
		Workers:        *workers,
	})
	if err != nil {
		fatalf("%v", err)
	}
	// nil scope (no -trace/-metrics/-pprof) keeps the zero-overhead
	// path; the result is bit-identical either way.
	scope, err := obsFlags.Scope("litmus")
	if err != nil {
		fatalf("%v", err)
	}
	assessor = assessor.WithObserver(scope)
	res, err := assessor.AssessElement("study", study, controls, changeAt, metric)
	if err != nil {
		// Degradations are data-caused and machine-classified; surface
		// the reason code so scripts can dispatch on it.
		if litmus.IsDegradation(err) {
			fatalf("assessment degraded (reason %s): %v", litmus.ReasonOf(err), err)
		}
		fatalf("assessment failed: %v", err)
	}
	fmt.Printf("litmus robust spatial regression: %s\n", res.Verdict)
	fmt.Printf("  pre-change fit R²: %.3f  (control group: %d elements)\n", res.FitR2, controls.Len())

	if so, err := litmus.StudyOnly(study, changeAt, metric, *alpha); err == nil {
		fmt.Printf("study-group-only baseline:        %s\n", so)
	}
	if did, _, err := litmus.DiD(study, controls, changeAt, metric, *alpha); err == nil {
		fmt.Printf("difference-in-differences:        %s\n", did)
	}

	if *diagnose {
		d, err := litmus.DiagnoseControlsObserved(scope, study, controls, changeAt)
		if err != nil {
			fatalf("diagnostics failed: %v", err)
		}
		health := "healthy"
		if !d.Healthy() {
			health = "POORLY SELECTED (majority of controls are bad predictors)"
		}
		fmt.Printf("\ncontrol group diagnostics: joint R²=%.3f, %d/%d flagged — %s\n",
			d.JointR2, d.FlaggedCount, len(d.PerControl), health)
		for _, c := range d.PerControl {
			flag := ""
			if c.Flagged {
				flag = "  <- bad predictor"
			}
			fmt.Printf("  %-20s corr=%+.3f  r²=%.3f%s\n", c.ControlID, c.Correlation, c.UnivariateR2, flag)
		}
	}

	if err := obsFlags.Report(os.Stdout, scope); err != nil {
		fatalf("writing observability report: %v", err)
	}
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
