package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/kpi"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSingleSeriesCSV(t *testing.T) {
	path := writeFile(t, "study.csv", `timestamp,value
2012-06-01T00:00:00Z,0.98
2012-06-01T06:00:00Z,0.97
2012-06-01T12:00:00Z,
2012-06-01T18:00:00Z,0.99
`)
	s, err := loadSingleSeriesCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.Index.Step != 6*time.Hour {
		t.Errorf("step = %v, want 6h", s.Index.Step)
	}
	if s.Values[0] != 0.98 || s.Values[3] != 0.99 {
		t.Errorf("values = %v", s.Values)
	}
	if !math.IsNaN(s.Values[2]) {
		t.Errorf("empty cell should load as NaN, got %v", s.Values[2])
	}
}

func TestLoadPanelCSV(t *testing.T) {
	path := writeFile(t, "controls.csv", `timestamp,nb-1,nb-2
2012-06-01T00:00:00Z,0.98,0.97
2012-06-01T06:00:00Z,0.97,0.96
2012-06-01T12:00:00Z,0.99,0.98
`)
	p, err := loadPanelCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("panel len = %d, want 2", p.Len())
	}
	s := p.MustSeries("nb-2")
	if s.Values[2] != 0.98 {
		t.Errorf("nb-2 values = %v", s.Values)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct {
		name, content string
	}{
		{"too-few-rows", "timestamp,value\n2012-06-01T00:00:00Z,1\n"},
		{"bad-timestamp", "timestamp,value\nnope,1\nalso-nope,2\n"},
		{"bad-value", "timestamp,value\n2012-06-01T00:00:00Z,abc\n2012-06-01T06:00:00Z,1\n"},
		{"irregular-grid", "timestamp,value\n2012-06-01T00:00:00Z,1\n2012-06-01T06:00:00Z,2\n2012-06-01T13:00:00Z,3\n"},
		{"non-increasing", "timestamp,value\n2012-06-01T06:00:00Z,1\n2012-06-01T00:00:00Z,2\n"},
	}
	for _, c := range cases {
		path := writeFile(t, c.name+".csv", c.content)
		if _, err := loadSingleSeriesCSV(path); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := loadSingleSeriesCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestKPIParse(t *testing.T) {
	k, err := kpi.Parse("dropped-call-ratio")
	if err != nil {
		t.Fatal(err)
	}
	if k != kpi.DroppedCallRatio {
		t.Errorf("kpi.Parse = %v", k)
	}
	if _, err := kpi.Parse("nope"); err == nil {
		t.Error("unknown KPI accepted")
	}
}
