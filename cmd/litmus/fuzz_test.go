package main

// Fuzz targets for the CSV loaders: arbitrary input must produce either
// a parsed result on a valid regular grid or an error — never a panic.
// Malformed rows, duplicate timestamps and explicit NaN/Inf cells are
// all rejection cases.

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var csvSeeds = []string{
	// Valid series.
	"timestamp,value\n2012-06-01T00:00:00Z,0.98\n2012-06-01T06:00:00Z,0.97\n2012-06-01T12:00:00Z,0.99\n",
	// Valid panel.
	"timestamp,a,b\n2012-06-01T00:00:00Z,1,2\n2012-06-01T06:00:00Z,3,4\n",
	// Missing observation (allowed: empty cell).
	"timestamp,value\n2012-06-01T00:00:00Z,\n2012-06-01T06:00:00Z,1\n",
	// Duplicate timestamps.
	"timestamp,value\n2012-06-01T00:00:00Z,1\n2012-06-01T00:00:00Z,2\n",
	// Explicit NaN / Inf cells (must error).
	"timestamp,value\n2012-06-01T00:00:00Z,NaN\n2012-06-01T06:00:00Z,1\n",
	"timestamp,value\n2012-06-01T00:00:00Z,+Inf\n2012-06-01T06:00:00Z,-Inf\n",
	// Irregular grid, bad timestamp, bad value, short file, quotes.
	"timestamp,value\n2012-06-01T00:00:00Z,1\n2012-06-01T07:00:00Z,2\n2012-06-01T09:00:00Z,3\n",
	"timestamp,value\nnot-a-time,1\nalso-not,2\n",
	"timestamp,value\n2012-06-01T00:00:00Z,abc\n2012-06-01T06:00:00Z,1\n",
	"timestamp,value\n",
	"timestamp,\"a\n2012-06-01T00:00:00Z,1\n",
	// Duplicate panel column ids.
	"timestamp,a,a\n2012-06-01T00:00:00Z,1,2\n2012-06-01T06:00:00Z,3,4\n",
	// Far-apart timestamps (duration arithmetic edge).
	"timestamp,value\n0001-01-01T00:00:00Z,1\n9999-12-31T23:59:59Z,2\n",
}

// FuzzReadSeries fuzzes the single-series loader.
func FuzzReadSeries(f *testing.F) {
	for _, s := range csvSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := readSeries(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed successfully: the invariants the assessor relies on.
		if s.Index.Step <= 0 {
			t.Fatalf("accepted series with non-positive step %v", s.Index.Step)
		}
		if s.Len() < 2 {
			t.Fatalf("accepted series with %d rows, need >= 2", s.Len())
		}
		for i, v := range s.Values {
			if math.IsInf(v, 0) {
				t.Fatalf("accepted explicit Inf at row %d", i)
			}
		}
	})
}

// FuzzReadPanel fuzzes the control-panel loader with the same corpus.
func FuzzReadPanel(f *testing.F) {
	for _, s := range csvSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := readPanel(bytes.NewReader(data))
		if err != nil {
			return
		}
		if p.Len() < 1 {
			t.Fatal("accepted panel without columns")
		}
		for _, id := range p.IDs() {
			col := p.MustSeries(id)
			for i, v := range col.Values {
				if math.IsInf(v, 0) {
					t.Fatalf("accepted explicit Inf in %q row %d", id, i)
				}
			}
		}
	})
}

// TestRejectsNonFiniteCells pins the NaN/Inf policy outside the fuzzer:
// explicit non-finite tokens error, empty cells load as missing.
func TestRejectsNonFiniteCells(t *testing.T) {
	for _, bad := range []string{"NaN", "nan", "Inf", "+Inf", "-Inf", "Infinity"} {
		in := "timestamp,value\n2012-06-01T00:00:00Z," + bad + "\n2012-06-01T06:00:00Z,1\n"
		if _, err := readSeries(strings.NewReader(in)); err == nil {
			t.Errorf("cell %q accepted, want error", bad)
		}
	}
	in := "timestamp,value\n2012-06-01T00:00:00Z,\n2012-06-01T06:00:00Z,1\n"
	s, err := readSeries(strings.NewReader(in))
	if err != nil {
		t.Fatalf("empty cell rejected: %v", err)
	}
	if !math.IsNaN(s.Values[0]) {
		t.Errorf("empty cell = %v, want NaN (missing)", s.Values[0])
	}
}
