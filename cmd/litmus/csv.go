package main

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"time"

	"repro/internal/timeseries"

	litmus "repro"
)

// parseGrid validates that timestamps form a regular grid and returns its
// index.
func parseGrid(stamps []time.Time) (litmus.Index, error) {
	if len(stamps) < 2 {
		return litmus.Index{}, fmt.Errorf("need at least 2 rows, got %d", len(stamps))
	}
	step := stamps[1].Sub(stamps[0])
	if step <= 0 {
		return litmus.Index{}, fmt.Errorf("non-increasing timestamps")
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i].Sub(stamps[i-1]) != step {
			return litmus.Index{}, fmt.Errorf("irregular grid at row %d: step %v, want %v", i+1, stamps[i].Sub(stamps[i-1]), step)
		}
	}
	return litmus.NewIndex(stamps[0], step, len(stamps)), nil
}

// readCSV loads CSV content with a header row and at least minCols
// columns.
func readCSV(src io.Reader, minCols int) ([]string, [][]string, error) {
	r := csv.NewReader(src)
	records, err := r.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(records) < 3 {
		return nil, nil, fmt.Errorf("need a header and at least 2 data rows")
	}
	if len(records[0]) < minCols {
		return nil, nil, fmt.Errorf("need >= %d columns, got %d", minCols, len(records[0]))
	}
	return records[0], records[1:], nil
}

func parseRows(rows [][]string) ([]time.Time, [][]float64, error) {
	stamps := make([]time.Time, len(rows))
	values := make([][]float64, len(rows))
	for i, row := range rows {
		ts, err := time.Parse(time.RFC3339, row[0])
		if err != nil {
			return nil, nil, fmt.Errorf("row %d: bad timestamp %q: %v", i+2, row[0], err)
		}
		stamps[i] = ts
		vals := make([]float64, len(row)-1)
		for j, cell := range row[1:] {
			if cell == "" {
				vals[j] = math.NaN() // missing observation
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d col %d: bad value %q: %v", i+2, j+2, cell, err)
			}
			// Explicit NaN/Inf tokens are malformed data, not missing
			// observations (an empty cell marks those); letting them
			// through would silently poison the regression inputs.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("row %d col %d: non-finite value %q", i+2, j+2, cell)
			}
			vals[j] = v
		}
		values[i] = vals
	}
	return stamps, values, nil
}

// readSeries parses "timestamp,value" CSV content.
func readSeries(src io.Reader) (litmus.Series, error) {
	_, rows, err := readCSV(src, 2)
	if err != nil {
		return litmus.Series{}, err
	}
	stamps, values, err := parseRows(rows)
	if err != nil {
		return litmus.Series{}, err
	}
	ix, err := parseGrid(stamps)
	if err != nil {
		return litmus.Series{}, err
	}
	vals := make([]float64, len(values))
	for i, row := range values {
		vals[i] = row[0]
	}
	return litmus.NewSeries(ix, vals), nil
}

// readPanel parses "timestamp,id1,id2,..." CSV content.
func readPanel(src io.Reader) (*litmus.Panel, error) {
	header, rows, err := readCSV(src, 2)
	if err != nil {
		return nil, err
	}
	stamps, values, err := parseRows(rows)
	if err != nil {
		return nil, err
	}
	ix, err := parseGrid(stamps)
	if err != nil {
		return nil, err
	}
	panel := timeseries.NewPanel(ix)
	seen := make(map[string]bool, len(header)-1)
	for j, id := range header[1:] {
		if seen[id] {
			return nil, fmt.Errorf("duplicate control id %q in header", id)
		}
		seen[id] = true
		col := make([]float64, len(values))
		for i, row := range values {
			if j >= len(row) {
				return nil, fmt.Errorf("row %d has %d values, want %d", i+2, len(row), len(header)-1)
			}
			col[i] = row[j]
		}
		panel.Add(id, litmus.NewSeries(ix, col))
	}
	return panel, nil
}

// loadSingleSeriesCSV loads a "timestamp,value" file.
func loadSingleSeriesCSV(path string) (litmus.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return litmus.Series{}, err
	}
	defer f.Close()
	s, err := readSeries(f)
	if err != nil {
		return litmus.Series{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// loadPanelCSV loads a "timestamp,id1,id2,..." file.
func loadPanelCSV(path string) (*litmus.Panel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := readPanel(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
