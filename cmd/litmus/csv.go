package main

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"repro/internal/timeseries"

	litmus "repro"
)

// parseGrid validates that timestamps form a regular grid and returns its
// index.
func parseGrid(stamps []time.Time) (litmus.Index, error) {
	if len(stamps) < 2 {
		return litmus.Index{}, fmt.Errorf("need at least 2 rows, got %d", len(stamps))
	}
	step := stamps[1].Sub(stamps[0])
	if step <= 0 {
		return litmus.Index{}, fmt.Errorf("non-increasing timestamps")
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i].Sub(stamps[i-1]) != step {
			return litmus.Index{}, fmt.Errorf("irregular grid at row %d: step %v, want %v", i+1, stamps[i].Sub(stamps[i-1]), step)
		}
	}
	return litmus.NewIndex(stamps[0], step, len(stamps)), nil
}

// readCSV loads a CSV file with a header row and at least minCols columns.
func readCSV(path string, minCols int) ([]string, [][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	records, err := r.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(records) < 3 {
		return nil, nil, fmt.Errorf("%s: need a header and at least 2 data rows", path)
	}
	if len(records[0]) < minCols {
		return nil, nil, fmt.Errorf("%s: need >= %d columns, got %d", path, minCols, len(records[0]))
	}
	return records[0], records[1:], nil
}

func parseRows(rows [][]string) ([]time.Time, [][]float64, error) {
	stamps := make([]time.Time, len(rows))
	values := make([][]float64, len(rows))
	for i, row := range rows {
		ts, err := time.Parse(time.RFC3339, row[0])
		if err != nil {
			return nil, nil, fmt.Errorf("row %d: bad timestamp %q: %v", i+2, row[0], err)
		}
		stamps[i] = ts
		vals := make([]float64, len(row)-1)
		for j, cell := range row[1:] {
			if cell == "" {
				vals[j] = math.NaN() // missing observation
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("row %d col %d: bad value %q: %v", i+2, j+2, cell, err)
			}
			vals[j] = v
		}
		values[i] = vals
	}
	return stamps, values, nil
}

// loadSingleSeriesCSV loads a "timestamp,value" file.
func loadSingleSeriesCSV(path string) (litmus.Series, error) {
	_, rows, err := readCSV(path, 2)
	if err != nil {
		return litmus.Series{}, err
	}
	stamps, values, err := parseRows(rows)
	if err != nil {
		return litmus.Series{}, fmt.Errorf("%s: %w", path, err)
	}
	ix, err := parseGrid(stamps)
	if err != nil {
		return litmus.Series{}, fmt.Errorf("%s: %w", path, err)
	}
	vals := make([]float64, len(values))
	for i, row := range values {
		vals[i] = row[0]
	}
	return litmus.NewSeries(ix, vals), nil
}

// loadPanelCSV loads a "timestamp,id1,id2,..." file.
func loadPanelCSV(path string) (*litmus.Panel, error) {
	header, rows, err := readCSV(path, 2)
	if err != nil {
		return nil, err
	}
	stamps, values, err := parseRows(rows)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	ix, err := parseGrid(stamps)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	panel := timeseries.NewPanel(ix)
	for j, id := range header[1:] {
		col := make([]float64, len(values))
		for i, row := range values {
			if j >= len(row) {
				return nil, fmt.Errorf("%s: row %d has %d values, want %d", path, i+2, len(row), len(header)-1)
			}
			col[i] = row[j]
		}
		panel.Add(id, litmus.NewSeries(ix, col))
	}
	return panel, nil
}
