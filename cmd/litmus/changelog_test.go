package main

// Flag validation for the changelog mode (same private-FlagSet pattern
// as the cmd/litmus-eval flag tests), the changelog file loader, and a
// batch-vs-loop equivalence check on real CSV-shaped data.

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/kpi"
	"repro/internal/timeseries"

	litmus "repro"
)

// parseFlags runs registerOptions + validate on a private FlagSet, the
// same path main takes.
func parseFlags(t *testing.T, args ...string) (*options, error) {
	t.Helper()
	fs := flag.NewFlagSet("litmus", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o := registerOptions(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, o.validate()
}

func TestFlagValidation(t *testing.T) {
	valid := [][]string{
		{"-study", "s.csv", "-controls", "c.csv", "-change", "2012-06-15T00:00:00Z"},
		{"-study", "s.csv", "-controls", "c.csv", "-changelog", "log.json"},
		{"-study", "s.csv", "-controls", "c.csv", "-changelog", "log.json", "-changelog-batch"},
		{"-study", "s.csv", "-controls", "c.csv", "-changelog", "log.json", "-window-days", "7"},
		{"-study", "s.csv", "-controls", "c.csv", "-change", "2012-06-15T00:00:00Z", "-diagnose"},
	}
	for _, args := range valid {
		if _, err := parseFlags(t, args...); err != nil {
			t.Errorf("args %v rejected: %v", args, err)
		}
	}
	invalid := [][]string{
		{},
		{"-study", "s.csv", "-change", "2012-06-15T00:00:00Z"},
		{"-controls", "c.csv", "-change", "2012-06-15T00:00:00Z"},
		{"-study", "s.csv", "-controls", "c.csv"},
		{"-study", "s.csv", "-controls", "c.csv", "-change", "2012-06-15T00:00:00Z", "-changelog", "log.json"},
		{"-study", "s.csv", "-controls", "c.csv", "-change", "not-a-time"},
		{"-study", "s.csv", "-controls", "c.csv", "-changelog-batch"},
		{"-study", "s.csv", "-controls", "c.csv", "-change", "2012-06-15T00:00:00Z", "-changelog-batch"},
		{"-study", "s.csv", "-controls", "c.csv", "-changelog", "log.json", "-diagnose"},
		{"-study", "s.csv", "-controls", "c.csv", "-changelog", "log.json", "-window-days", "1"},
	}
	for _, args := range invalid {
		if _, err := parseFlags(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// The parsed change time lands in changeAt.
	o, err := parseFlags(t, "-study", "s.csv", "-controls", "c.csv", "-change", "2012-06-15T06:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Date(2012, 6, 15, 6, 0, 0, 0, time.UTC); !o.changeAt.Equal(want) {
		t.Errorf("changeAt = %v, want %v", o.changeAt, want)
	}
}

func writeChangelogFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "changes.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadChangelog(t *testing.T) {
	good := `[
	  {"id": "CHG-1", "at": "2012-06-15T00:00:00Z", "type": "software-upgrade", "description": "x"},
	  {"id": "CHG-2", "at": "2012-06-16T00:00:00Z"}
	]`
	changes, err := loadChangelog(writeChangelogFile(t, good))
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 2 {
		t.Fatalf("got %d changes, want 2", len(changes))
	}
	if changes[0].ID != "CHG-1" || len(changes[0].Elements) != 1 || changes[0].Elements[0] != studyElementID {
		t.Errorf("first change wrong: %+v", changes[0])
	}
	if !changes[1].At.Equal(time.Date(2012, 6, 16, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("second change at = %v", changes[1].At)
	}

	bad := map[string]string{
		"empty list":    `[]`,
		"no id":         `[{"at": "2012-06-15T00:00:00Z"}]`,
		"duplicate id":  `[{"id": "C", "at": "2012-06-15T00:00:00Z"}, {"id": "C", "at": "2012-06-16T00:00:00Z"}]`,
		"bad time":      `[{"id": "C", "at": "yesterday"}]`,
		"bad type":      `[{"id": "C", "at": "2012-06-15T00:00:00Z", "type": "no-such-type"}]`,
		"unknown field": `[{"id": "C", "at": "2012-06-15T00:00:00Z", "extra": 1}]`,
		"not a list":    `{"id": "C"}`,
	}
	for name, content := range bad {
		if _, err := loadChangelog(writeChangelogFile(t, content)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := loadChangelog(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// changelogWorld builds an in-memory study/controls pair long enough for
// a 7-day window on a 6h grid, with two assessable change times.
func changelogWorld() (litmus.Series, *litmus.Panel) {
	ix := timeseries.NewIndex(time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC), 6*time.Hour, 120)
	sv := make([]float64, ix.N)
	for i := range sv {
		sv[i] = 0.95 + 0.02*math.Sin(float64(i)/5)
	}
	study := timeseries.NewSeries(ix, sv)
	panel := timeseries.NewPanel(ix)
	for c := 0; c < 6; c++ {
		v := make([]float64, ix.N)
		for i := range v {
			v[i] = 0.93 + 0.02*math.Sin(float64(i)/5+0.1*float64(c)) + 0.001*float64(c)
		}
		panel.Add(fmt.Sprintf("ctl-%d", c), timeseries.NewSeries(ix, v))
	}
	return study, panel
}

// TestChangelogBatchMatchesLoop pins the mode's core promise: routing a
// changelog through the batch path yields byte-identical assessments to
// the per-entry loop.
func TestChangelogBatchMatchesLoop(t *testing.T) {
	study, controls := changelogWorld()
	net, err := csvNetwork(controls)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]litmus.Series{studyElementID: study}
	for _, id := range controls.IDs() {
		byID[id] = controls.MustSeries(id)
	}
	provider := litmus.ProviderFunc(func(id string, _ litmus.KPI) (litmus.Series, bool) {
		s, ok := byID[id]
		return s, ok
	})
	assessor, err := litmus.NewAssessor(litmus.Config{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := &litmus.Pipeline{
		Network:          net,
		Provider:         provider,
		Assessor:         assessor,
		ControlPredicate: control.SameKind(),
		MaxControls:      controls.Len(),
	}
	path := writeChangelogFile(t, `[
	  {"id": "CHG-A", "at": "2012-06-15T00:00:00Z"},
	  {"id": "CHG-B", "at": "2012-06-15T00:00:00Z", "type": "software-upgrade"},
	  {"id": "CHG-C", "at": "2012-06-16T12:00:00Z"}
	]`)
	changes, err := loadChangelog(path)
	if err != nil {
		t.Fatal(err)
	}
	metric := kpi.VoiceRetainability
	kpis := []litmus.KPI{metric}
	ctx := context.Background()

	batch, err := p.AssessChangelog(ctx, changes, kpis, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range changes {
		single, err := p.AssessChangeContext(ctx, c, kpis, 7)
		if err != nil {
			t.Fatalf("%s: loop path failed: %v", c.ID, err)
		}
		if batch.Errors[i] != nil {
			t.Fatalf("%s: batch path failed: %v", c.ID, batch.Errors[i])
		}
		want, err := litmus.MarshalAssessment(single)
		if err != nil {
			t.Fatal(err)
		}
		got, err := litmus.MarshalAssessment(batch.Results[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: batch and loop assessments differ", c.ID)
		}
	}
	// CHG-A and CHG-B share (selection, KPI, at): the batch must have
	// shared their panel assembly.
	if batch.PanelsShared == 0 {
		t.Error("batch shared no panel assemblies across same-signature entries")
	}
}

func TestCSVNetworkRejectsStudyCollision(t *testing.T) {
	ix := timeseries.NewIndex(time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC), 6*time.Hour, 8)
	panel := timeseries.NewPanel(ix)
	panel.Add(studyElementID, timeseries.NewSeries(ix, make([]float64, ix.N)))
	if _, err := csvNetwork(panel); err == nil {
		t.Error("controls column named like the study element accepted")
	}
}
