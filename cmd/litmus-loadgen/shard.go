package main

// Sharded-serving benchmark mode (-shard): proves that consistent-hash
// routing turns N nodes into one coherent cache of N× the capacity. The
// same workload — R rounds over S distinct requests, issued through a
// shard.Router — runs twice: against one node, then against three, each
// node configured with a result cache (and job retention) of c entries
// where c < S ≤ 3·c·(1 - imbalance slack). The single node LRU-thrashes:
// every round re-evicts what the previous round cached, so all R·S
// requests are computed. The three-node ring holds the whole working
// set — each node owns ~S/3 ≤ c digests — so only the first round
// computes and rounds 2..R are pure cache hits. The report is
// BENCH_9.json; per-node done-job counters prove no digest was computed
// on more than one node.
//
// On a single core the speedup is pure cache economics, not
// parallelism: three in-process nodes share the CPU, but they compute S
// jobs between them instead of R·S.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/shard"
)

// shardSpeedupTarget is the acceptance threshold: three routed nodes
// must deliver at least this multiple of single-node throughput.
const shardSpeedupTarget = 2.2

// shardNode is one in-process service instance under benchmark.
type shardNode struct {
	s          *serve.Server
	httpServer *http.Server
	url        string
}

// shardCluster boots n in-process nodes, each with a result cache and
// job-record retention of cache entries. Retention must not exceed the
// cache: finished job records answer resubmissions before the cache is
// consulted, so a larger retention would mask the eviction behavior the
// benchmark is measuring.
func shardCluster(n, cache int) ([]*shardNode, func()) {
	nodes := make([]*shardNode, n)
	for i := range nodes {
		s := serve.New(serve.Config{
			Workers:      1,
			QueueDepth:   256,
			CacheSize:    cache,
			JobRetention: cache,
			RetryAfter:   50 * time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("listen: %v", err)
		}
		httpServer := &http.Server{Handler: s.Handler()}
		go func() { _ = httpServer.Serve(ln) }()
		nodes[i] = &shardNode{s: s, httpServer: httpServer, url: "http://" + ln.Addr().String()}
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, nd := range nodes {
			_ = nd.httpServer.Shutdown(ctx)
			_ = nd.s.Shutdown(ctx)
		}
	}
	return nodes, stop
}

// shardRequest is a lightened golden-style request (one KPI, bounded
// assessor iterations) so the benchmark measures cache economics, not
// raw engine time. Distinct seeds are distinct canonical digests.
func shardRequest(genSeed int64) *serve.AssessRequest {
	req := goldenStyleRequest(genSeed)
	req.Change.ID = fmt.Sprintf("CHG-SHARD-%d", genSeed)
	req.KPIs = []string{"voice-retainability"}
	req.Assessor = &serve.AssessorSpec{Seed: 9, Iterations: 60}
	req.Controls = nil
	return req
}

// nodeCounter reads one labeled counter from a node's registry.
func nodeCounter(nd *shardNode, name string) int64 {
	v, _ := nd.s.Registry().Snapshot()[name].(int64)
	return v
}

// runShardRounds drives rounds×len(reqs) assessments through rt with a
// barrier between rounds (hits require the previous round to have
// populated the caches). Every repeat is checked byte-identical to the
// first answer for its request.
func runShardRounds(ctx context.Context, rt *shard.Router, reqs []*serve.AssessRequest, rounds, conc int) (wallSeconds float64, failures int64) {
	first := make([][]byte, len(reqs))
	var failed atomic.Int64
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					b, err := rt.Assess(ctx, reqs[i])
					if err != nil {
						logger.Warn("shard request failed", "request", i, "error", err.Error())
						failed.Add(1)
						continue
					}
					// Rounds are barriered, so slot i is written in round 0
					// and only read afterwards — no race.
					if first[i] == nil {
						first[i] = b
					} else if string(first[i]) != string(b) {
						fatalf("request %d: repeat answer differs from first answer", i)
					}
				}
			}()
		}
		for i := range reqs {
			work <- i
		}
		close(work)
		wg.Wait()
	}
	return time.Since(t0).Seconds(), failed.Load()
}

// runShardPhase boots an n-node cluster, runs the workload, and folds
// the per-node counters into a report fragment.
func runShardPhase(n, cache int, reqs []*serve.AssessRequest, rounds, conc int) (map[string]any, int64, int64, int64) {
	nodes, stop := shardCluster(n, cache)
	defer stop()
	endpoints := make([]string, len(nodes))
	for i, nd := range nodes {
		endpoints[i] = nd.url
	}
	rt, err := shard.NewRouter(endpoints, shard.RouterOptions{PollInterval: 2 * time.Millisecond})
	if err != nil {
		fatalf("router: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := rt.WaitReady(ctx); err != nil {
		fatalf("cluster not ready: %v", err)
	}

	logger.Info("shard phase started", "nodes", n, "requests", len(reqs), "rounds", rounds)
	wall, failures := runShardRounds(ctx, rt, reqs, rounds, conc)

	var computed, hits int64
	perNode := make(map[string]int64, len(nodes))
	for _, nd := range nodes {
		done := nodeCounter(nd, obs.Labeled(obs.MetricJobs, "status", "done"))
		perNode[nd.url] = done
		computed += done
		hits += nodeCounter(nd, obs.MetricCacheHits)
	}
	total := rounds * len(reqs)
	frag := map[string]any{
		"nodes":             n,
		"requests":          total,
		"wall_seconds":      round3(wall),
		"jobs_per_sec":      round3(float64(total) / wall),
		"computed_jobs":     computed,
		"cache_hits":        hits,
		"per_node_computed": perNode,
		"router_failovers":  rt.Stats().Failovers,
		"failures":          failures,
	}
	logger.Info("shard phase finished", "nodes", n, "wall_seconds", round3(wall), "computed_jobs", computed, "cache_hits", hits)
	return frag, computed, failures, rt.Stats().Failovers
}

// runShardBench is the -shard entry point; it writes the BENCH_9.json
// report to out and exits non-zero if the speedup target is missed, a
// request failed, or any digest was computed on more than one node.
func runShardBench(rounds, requests, cache, conc int, out string) {
	if rounds < 2 || requests <= 0 || cache <= 0 || conc <= 0 {
		fatalf("need -shard-rounds >= 2, -shard-requests > 0, -shard-cache > 0 and -c > 0")
	}
	if requests <= cache {
		fatalf("-shard-requests (%d) must exceed -shard-cache (%d), or the single node never evicts", requests, cache)
	}
	reqs := make([]*serve.AssessRequest, requests)
	for i := range reqs {
		reqs[i] = shardRequest(int64(10_000 + i))
	}

	singleFrag, singleComputed, singleFail, _ := runShardPhase(1, cache, reqs, rounds, conc)
	shardFrag, shardComputed, shardFail, failovers := runShardPhase(3, cache, reqs, rounds, conc)

	speedup := shardFrag["jobs_per_sec"].(float64) / singleFrag["jobs_per_sec"].(float64)
	// With every digest routed to its ring owner and every owner's share
	// inside its cache, the cluster computes each distinct request exactly
	// once — more means either double computation or owner-side eviction.
	noDouble := shardComputed == int64(requests) && failovers == 0
	pass := singleFail == 0 && shardFail == 0 && noDouble && speedup >= shardSpeedupTarget

	report := map[string]any{
		"litmus_shard_bench": map[string]any{
			"rounds":                rounds,
			"distinct_requests":     requests,
			"per_node_cache":        cache,
			"client_concurrency":    conc,
			"single_node":           singleFrag,
			"sharded":               shardFrag,
			"single_computed_jobs":  singleComputed,
			"sharded_computed_jobs": shardComputed,
			"speedup":               round3(speedup),
			"speedup_target":        shardSpeedupTarget,
			"no_double_computation": noDouble,
			"pass":                  pass,
		},
	}
	payload, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(out, payload, 0o644); err != nil {
		fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("%s", payload)
	logger.Info("report written", "path", out, "speedup", round3(speedup), "no_double_computation", noDouble, "pass", pass)
	if !pass {
		os.Exit(1)
	}
}
