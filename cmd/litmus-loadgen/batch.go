package main

// Batch benchmark mode (-batch): proves the sub-linear cost of the
// changelog batch path by running the same N-entry changelog twice —
// once as N sequential single submissions, once as one POST
// /v1/assess/batch — against separate in-process servers (so neither
// phase warms the other's result cache), and reporting wall-clock and
// allocation ratios as BENCH_8.json.
//
// The changelog spreads N entries over a bounded set of distinct
// (study, change-time) signatures: entries sharing a signature reuse
// control panels and before-window factorizations inside the engine,
// which is where the amortization comes from. Every entry has a unique
// change ID, so every entry is distinct work for the cache — no
// entry-level dedup flatters the batch numbers.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// batchTargets are the acceptance thresholds: the batch must cost at
// most this fraction of the sequential singles baseline.
const (
	batchWallTarget  = 0.35
	batchAllocTarget = 0.25
)

// batchServer starts a dedicated in-process server and returns its
// client, registry and shutdown hook.
func batchServer(workers, queue int) (*client.Client, *obs.Registry, func()) {
	s := serve.New(serve.Config{Workers: workers, QueueDepth: queue, RetryAfter: 50 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	httpServer := &http.Server{Handler: s.Handler()}
	go func() { _ = httpServer.Serve(ln) }()
	cl := client.New("http://"+ln.Addr().String(), nil)
	cl.PollInterval = time.Millisecond
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(ctx)
		_ = s.Shutdown(ctx)
	}
	return cl, s.Registry(), stop
}

// batchChangelog builds n changes over `signatures` distinct
// (study, at) pairs: studies cycle over per-RNC tower triples and
// change times step in 6h increments, so the signature count — not the
// entry count — bounds the distinct panel work.
func batchChangelog(n, signatures int) []serve.ChangeSpec {
	topo := netsim.DefaultTopologyConfig()
	topo.Seed = 17
	net := netsim.Build(topo)
	rncs := net.OfKind(netsim.RNC)
	if len(rncs) == 0 {
		fatalf("benchmark topology has no RNCs")
	}
	var studies [][]string
	for _, rnc := range rncs {
		children := net.Children(rnc)
		for o := 0; o+3 <= len(children); o += 3 {
			studies = append(studies, children[o:o+3])
		}
	}
	if len(studies) == 0 {
		fatalf("benchmark topology has no tower triples")
	}
	base := time.Date(2012, 3, 15, 0, 0, 0, 0, time.UTC)
	types := []string{"config-change", "software-upgrade", "feature-activation", "hardware-upgrade"}
	qualities := []float64{-1.5, -0.8, 0, 0.8}
	changes := make([]serve.ChangeSpec, 0, n)
	for i := 0; i < n; i++ {
		sig := i % signatures
		study := studies[sig%len(studies)]
		at := base.Add(time.Duration(sig/len(studies)) * 6 * time.Hour)
		changes = append(changes, serve.ChangeSpec{
			ID:          fmt.Sprintf("CHG-BENCH-%04d", i),
			Type:        types[i%len(types)],
			Description: "batch benchmark entry",
			Elements:    study,
			At:          at.Format(time.RFC3339),
			TrueQuality: qualities[(i/len(types))%len(qualities)],
		})
	}
	return changes
}

// benchRequest wraps the shared benchmark world around one change.
func benchRequest(ch serve.ChangeSpec) *serve.AssessRequest {
	return &serve.AssessRequest{
		Topology:   &serve.TopologySpec{Seed: 17},
		Generator:  &serve.GeneratorSpec{Seed: 23},
		Index:      serve.IndexSpec{Start: "2012-03-01T00:00:00Z", Step: "6h", N: 28 * 4},
		Change:     ch,
		KPIs:       []string{"voice-retainability", "data-accessibility"},
		WindowDays: 14,
		Assessor:   &serve.AssessorSpec{Seed: 9},
		Controls:   &serve.ControlsSpec{Predicates: []string{"same-kind", "same-parent"}},
	}
}

// measure runs fn between GC-settled ReadMemStats snapshots and returns
// wall-clock seconds and bytes allocated.
func measure(fn func()) (wallSeconds float64, allocBytes uint64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	fn()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return wall.Seconds(), m1.TotalAlloc - m0.TotalAlloc
}

// runBatchBench is the -batch entry point; it writes the BENCH_8.json
// report to out and exits non-zero if any entry failed or a ratio
// target was missed.
func runBatchBench(entries, signatures, sWorkers, sQueue int, out string) {
	if entries <= 0 || signatures <= 0 {
		fatalf("need -batch-entries > 0 and -batch-signatures > 0")
	}
	ctx := context.Background()
	changes := batchChangelog(entries, signatures)
	var failures int

	// Baseline: sequential single submissions against a fresh server.
	clS, _, stopS := batchServer(sWorkers, sQueue)
	logger.Info("singles baseline started", "entries", entries)
	singleWall, singleAlloc := measure(func() {
		for _, ch := range changes {
			if _, err := clS.Assess(ctx, benchRequest(ch)); err != nil {
				logger.Warn("single request failed", "change", ch.ID, "error", err.Error())
				failures++
			}
		}
	})
	stopS()
	logger.Info("singles baseline finished", "wall_seconds", round3(singleWall))

	// One batch submission against its own fresh server.
	clB, regB, stopB := batchServer(sWorkers, sQueue)
	shared := benchRequest(changes[0])
	breq := &serve.BatchAssessRequest{
		Topology:   shared.Topology,
		Generator:  shared.Generator,
		Index:      shared.Index,
		Changes:    changes,
		KPIs:       shared.KPIs,
		WindowDays: shared.WindowDays,
		Assessor:   shared.Assessor,
		Controls:   shared.Controls,
	}
	var doc *serve.BatchResultDoc
	batchWall, batchAlloc := measure(func() {
		var err error
		doc, err = clB.AssessBatch(ctx, breq)
		if err != nil {
			fatalf("batch submission: %v", err)
		}
	})
	snap := regB.Snapshot()
	stopB()
	for _, e := range doc.Entries {
		if e.Error != "" {
			logger.Warn("batch entry failed", "change", e.ChangeID, "error", e.Error)
			failures++
		}
	}
	counter := func(name string) int64 {
		v, _ := snap[name].(int64)
		return v
	}
	wallRatio := batchWall / singleWall
	allocRatio := float64(batchAlloc) / float64(singleAlloc)
	pass := failures == 0 && wallRatio <= batchWallTarget && allocRatio <= batchAllocTarget

	report := map[string]any{
		"litmus_batch_bench": map[string]any{
			"entries":             entries,
			"distinct_signatures": signatures,
			"failures":            failures,
			"singles": map[string]any{
				"wall_seconds":      round3(singleWall),
				"total_alloc_bytes": singleAlloc,
			},
			"batch": map[string]any{
				"wall_seconds":          round3(batchWall),
				"total_alloc_bytes":     batchAlloc,
				"entries_total":         counter(obs.MetricBatchEntries),
				"panels_shared":         counter(obs.MetricBatchPanelsShared),
				"factorizations_reused": counter(obs.MetricBatchFactorizationsReused),
				"before_factorizations": counter(obs.MetricBeforeFactorizations),
			},
			"wall_ratio":         round3(wallRatio),
			"alloc_ratio":        round3(allocRatio),
			"wall_ratio_target":  batchWallTarget,
			"alloc_ratio_target": batchAllocTarget,
			"pass":               pass,
		},
	}
	payload, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(out, payload, 0o644); err != nil {
		fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("%s", payload)
	logger.Info("report written", "path", out, "wall_ratio", round3(wallRatio), "alloc_ratio", round3(allocRatio), "pass", pass)
	if !pass {
		os.Exit(1)
	}
}
