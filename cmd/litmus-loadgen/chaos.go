package main

// -chaos mode: the latency load test against an in-process cluster
// whose links run through deterministic netchaos TCP fault proxies.
// The first -chaos-faulty links get -chaos-spec applied after the
// cluster is ready, so the report shows how the resilient router
// (breakers, bounded failover, optional hedging) rides out the fault —
// and the same -chaos-seed reproduces the same fault schedule.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/netchaos"
	"repro/internal/serve"
	"repro/internal/serve/shard"
)

// startChaosCluster boots `nodes` in-process service nodes, each behind
// its own client→n<i> fault proxy, waits for readiness through the
// clean links, then applies spec to the first `faulty` links. It
// returns the resilient router over the proxied endpoints, a hook that
// snapshots per-link chaos stats for the report, and a cleanup func.
func startChaosCluster(nodes, faulty int, specStr string, seed int64, workers, queue int, hedge bool) (*shard.Router, func() map[string]any, func()) {
	if nodes < 2 {
		fatalf("-chaos needs at least 2 nodes, got %d", nodes)
	}
	if faulty < 0 || faulty >= nodes {
		fatalf("-chaos-faulty must be in [0, nodes): %d of %d would leave no clean node", faulty, nodes)
	}
	spec, err := netchaos.ParseSpec(specStr)
	if err != nil {
		fatalf("-chaos-spec: %v", err)
	}

	servers := make([]*serve.Server, nodes)
	httpServers := make([]*http.Server, nodes)
	proxies := make([]*netchaos.Proxy, nodes)
	endpoints := make([]string, nodes)
	for i := range servers {
		s := serve.New(serve.Config{Workers: workers, QueueDepth: queue, RetryAfter: 50 * time.Millisecond})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("listen: %v", err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		px, err := netchaos.NewProxy("client", fmt.Sprintf("n%d", i), ln.Addr().String(), nil, seed+int64(i))
		if err != nil {
			fatalf("netchaos proxy: %v", err)
		}
		servers[i], httpServers[i], proxies[i], endpoints[i] = s, hs, px, px.URL()
	}
	cleanup := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i := range servers {
			_ = proxies[i].Close()
			_ = httpServers[i].Shutdown(ctx)
			_ = servers[i].Shutdown(ctx)
		}
	}

	// Keep-alives off: netchaos draws one fault per connection, so each
	// request must dial through its proxy to feel the live spec.
	rt, err := shard.NewRouter(endpoints, shard.RouterOptions{
		HTTPClient:       &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		BreakerThreshold: 2,
		BreakerCooldown:  250 * time.Millisecond,
		AttemptTimeout:   2 * time.Second,
		Hedge:            hedge,
		HedgeMinDelay:    25 * time.Millisecond,
	})
	if err != nil {
		cleanup()
		fatalf("router: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := rt.WaitReady(waitCtx); err != nil {
		cleanup()
		fatalf("waiting for chaos cluster: %v", err)
	}
	for i := 0; i < faulty; i++ {
		proxies[i].SetSpec(spec)
	}
	logger.Info("chaos cluster started", "nodes", nodes, "faulty", faulty, "spec", spec.String(), "seed", seed, "hedge", hedge)

	info := func() map[string]any {
		links := make(map[string]any, nodes)
		for _, px := range proxies {
			src, dst := px.Link()
			entry := map[string]any{"conns": px.Conns()}
			if s := px.Spec(); s != nil {
				entry["spec"] = s.String()
			}
			links[src+"->"+dst] = entry
		}
		return map[string]any{
			"seed":   seed,
			"faulty": faulty,
			"links":  links,
		}
	}
	return rt, info, cleanup
}
