// Command litmus-loadgen drives the assessment service with a stream of
// concurrent assessment requests and reports the end-to-end latency
// distribution (submit → result in hand) plus throughput as JSON — the
// BENCH_4.json artifact of the serving layer.
//
// Usage:
//
//	litmus-loadgen -n 200 -c 8 -o BENCH_4.json        # in-process server
//	litmus-loadgen -addr http://localhost:8080 -n 100  # running instance
//
// Requests are the golden scenario with the generator seed varied per
// request; -dup controls the fraction of requests that reuse a previous
// seed and therefore exercise the result cache and in-flight dedup.
//
// -servers takes a comma-separated list of service base URLs and routes
// every request to the consistent-hash owner of its canonical digest
// (failing over when the owner is down), so a multi-node deployment
// behaves as one coherent cache. -shard runs the sharded-serving
// benchmark instead: the same workload against 1 vs 3 in-process nodes,
// reported as BENCH_9.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obscli"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/serve/shard"
)

// logger carries the command's structured diagnostics (stderr); the
// report JSON stays on stdout. Initialized from -log-format/-log-level.
var logger *slog.Logger

func main() {
	var (
		n         = flag.Int("n", 200, "total number of assessment requests")
		c         = flag.Int("c", 8, "concurrent client workers")
		dup       = flag.Float64("dup", 0.25, "fraction of requests that repeat an earlier request (cache hits)")
		addr      = flag.String("addr", "", "service base URL (empty = run an in-process server)")
		out       = flag.String("o", "", "output JSON path (default BENCH_4.json, BENCH_8.json with -batch)")
		sWorkers  = flag.Int("server-workers", 4, "in-process server: assessment workers")
		sQueue    = flag.Int("server-queue", 64, "in-process server: queue depth")
		batch     = flag.Bool("batch", false, "run the batch-vs-singles benchmark (BENCH_8.json) instead of the latency load test")
		batchN    = flag.Int("batch-entries", 1000, "-batch: changelog entries")
		batchSigs = flag.Int("batch-signatures", 24, "-batch: distinct (study, change-time) signatures the entries spread over")
		servers   = flag.String("servers", "", "comma-separated service base URLs; route each request to its consistent-hash owner (overrides -addr)")
		srvFile   = flag.String("servers-file", "", "file of service base URLs (one per line, # comments); re-read on SIGHUP and applied live to the ring")
		hedge     = flag.Bool("hedge", false, "routed modes: hedge slow requests to the next ring node (first answer wins)")
		chaosRun  = flag.Bool("chaos", false, "run the load against in-process nodes behind deterministic netchaos fault proxies")
		chaosSpec = flag.String("chaos-spec", "latency=30ms,jitter=20ms", "-chaos: netchaos fault spec for the faulted links")
		chaosSeed = flag.Int64("chaos-seed", 42, "-chaos: fault-schedule seed (same seed = same schedule)")
		chaosN    = flag.Int("chaos-nodes", 3, "-chaos: in-process nodes")
		chaosBad  = flag.Int("chaos-faulty", 1, "-chaos: how many node links get the fault spec")
		shardRun  = flag.Bool("shard", false, "run the sharded-serving benchmark (BENCH_9.json): 1 vs 3 in-process nodes")
		shardRnds = flag.Int("shard-rounds", 5, "-shard: passes over the request corpus")
		shardReqs = flag.Int("shard-requests", 120, "-shard: distinct requests per round (must exceed -shard-cache)")
		shardCap  = flag.Int("shard-cache", 80, "-shard: per-node result-cache and job-retention size")
	)
	logFlags := obscli.RegisterLog("text")
	flag.Parse()
	var err error
	logger, err = logFlags.Logger("litmus-loadgen")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus-loadgen:", err)
		os.Exit(2)
	}
	if *batch {
		if *out == "" {
			*out = "BENCH_8.json"
		}
		runBatchBench(*batchN, *batchSigs, *sWorkers, *sQueue, *out)
		return
	}
	if *shardRun {
		if *out == "" {
			*out = "BENCH_9.json"
		}
		runShardBench(*shardRnds, *shardReqs, *shardCap, *c, *out)
		return
	}
	if *out == "" {
		*out = "BENCH_4.json"
		if *chaosRun {
			*out = "CHAOS_LOAD.json"
		}
	}
	if *n <= 0 || *c <= 0 || *dup < 0 || *dup >= 1 {
		fatalf("need -n > 0, -c > 0 and -dup in [0, 1)")
	}

	ctx := context.Background()
	var assess func(context.Context, *serve.AssessRequest) ([]byte, error)
	var rt *shard.Router
	var reg *obs.Registry
	var chaosInfo func() map[string]any
	if *chaosRun {
		var cleanup func()
		rt, chaosInfo, cleanup = startChaosCluster(*chaosN, *chaosBad, *chaosSpec, *chaosSeed, *sWorkers, *sQueue, *hedge)
		defer cleanup()
		assess = rt.Assess
	} else if *servers != "" || *srvFile != "" {
		endpoints := splitServers(*servers)
		if *srvFile != "" {
			fromFile, err := readServersFile(*srvFile)
			if err != nil {
				fatalf("%v", err)
			}
			endpoints = append(endpoints, fromFile...)
		}
		var err error
		rt, err = shard.NewRouter(endpoints, shard.RouterOptions{Hedge: *hedge})
		if err != nil {
			fatalf("router: %v", err)
		}
		waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		if err := rt.WaitReady(waitCtx); err != nil {
			cancel()
			fatalf("waiting for servers: %v", err)
		}
		cancel()
		if *srvFile != "" {
			// Live membership: SIGHUP re-reads the file and reshapes the
			// ring in place — survivors keep their health/breaker state,
			// and only keys touching changed nodes move owners.
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			go func() {
				for range hup {
					eps, err := readServersFile(*srvFile)
					if err != nil {
						logger.Warn("membership reload failed", "error", err.Error())
						continue
					}
					if err := rt.SetEndpoints(eps); err != nil {
						logger.Warn("membership rejected", "error", err.Error())
						continue
					}
					logger.Info("membership updated", "servers", len(eps))
				}
			}()
		}
		assess = rt.Assess
		logger.Info("routing by canonical digest", "servers", len(endpoints))
	} else {
		baseURL := *addr
		if baseURL == "" {
			s := serve.New(serve.Config{Workers: *sWorkers, QueueDepth: *sQueue, RetryAfter: 50 * time.Millisecond})
			reg = s.Registry()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatalf("listen: %v", err)
			}
			httpServer := &http.Server{Handler: s.Handler()}
			go func() { _ = httpServer.Serve(ln) }()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_ = httpServer.Shutdown(ctx)
				_ = s.Shutdown(ctx)
			}()
			baseURL = "http://" + ln.Addr().String()
			logger.Info("in-process server started", "url", baseURL, "workers", *sWorkers, "queue", *sQueue)
		}
		assess = client.New(baseURL, nil).Assess
	}

	// Request corpus: every (1/dup)-th request repeats seed 1; the rest
	// get fresh seeds — a deterministic duplicate mix, no RNG needed.
	seeds := make([]int64, *n)
	stride := 0
	if *dup > 0 {
		stride = int(math.Round(1 / *dup))
	}
	next := int64(1)
	for i := range seeds {
		if stride > 0 && i%stride == 0 {
			seeds[i] = 1
			continue
		}
		next++
		seeds[i] = next
	}

	latencies := make([]time.Duration, *n)
	var failures atomic.Int64
	var wg sync.WaitGroup
	work := make(chan int)
	started := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req := goldenStyleRequest(seeds[i])
				t0 := time.Now()
				if _, err := assess(ctx, req); err != nil {
					logger.Warn("request failed", "request", i, "error", err.Error())
					failures.Add(1)
					continue
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(started)

	ok := make([]float64, 0, *n)
	for _, d := range latencies {
		if d > 0 {
			ok = append(ok, d.Seconds()*1000)
		}
	}
	sort.Float64s(ok)
	if len(ok) == 0 {
		fatalf("all %d requests failed", *n)
	}
	var sum float64
	for _, v := range ok {
		sum += v
	}
	report := map[string]any{
		"litmus_serve_loadgen": map[string]any{
			"requests":           *n,
			"concurrency":        *c,
			"duplicate_fraction": *dup,
			"failures":           failures.Load(),
			"wall_seconds":       round3(wall.Seconds()),
			"jobs_per_sec":       round3(float64(len(ok)) / wall.Seconds()),
			"latency_ms": map[string]any{
				"p50":  round3(quantile(ok, 0.50)),
				"p90":  round3(quantile(ok, 0.90)),
				"p99":  round3(quantile(ok, 0.99)),
				"mean": round3(sum / float64(len(ok))),
				"max":  round3(ok[len(ok)-1]),
			},
		},
	}
	if reg != nil {
		snap := reg.Snapshot()
		counter := func(name string) int64 {
			v, _ := snap[name].(int64)
			return v
		}
		inner := report["litmus_serve_loadgen"].(map[string]any)
		inner["cache_hits"] = counter(obs.MetricCacheHits)
		inner["cache_misses"] = counter(obs.MetricCacheMisses)
		inner["queue_rejected"] = counter(obs.MetricQueueRejected)
	}
	if rt != nil {
		st := rt.Stats()
		inner := report["litmus_serve_loadgen"].(map[string]any)
		inner["routed"] = st.Routed
		inner["router_failovers"] = st.Failovers
		inner["router_breaker_skips"] = st.BreakerSkips
		inner["router_breaker_transitions"] = st.BreakerTransitions
		inner["router_breaker_open"] = st.BreakerOpen
		inner["router_hedges"] = st.Hedges
		inner["router_hedge_wins"] = st.HedgeWins
	}
	if chaosInfo != nil {
		report["litmus_serve_loadgen"].(map[string]any)["chaos"] = chaosInfo()
	}
	payload, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("%s", payload)
	logger.Info("report written", "path", *out, "failures", failures.Load())
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// splitServers parses a comma-separated endpoint list, dropping empties.
func splitServers(s string) []string {
	var endpoints []string
	for _, ep := range strings.Split(s, ",") {
		if ep = strings.TrimSpace(ep); ep != "" {
			endpoints = append(endpoints, ep)
		}
	}
	return endpoints
}

// readServersFile reads a membership file: one base URL per line, blank
// lines and #-comments ignored.
func readServersFile(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var endpoints []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		endpoints = append(endpoints, line)
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("%s lists no servers", path)
	}
	return endpoints, nil
}

// goldenStyleRequest is the golden scenario with a per-request generator
// seed: identical world shape, distinct data, so equal seeds are cache
// hits and distinct seeds are real work.
func goldenStyleRequest(genSeed int64) *serve.AssessRequest {
	topo := netsim.DefaultTopologyConfig()
	topo.Seed = 17
	net := netsim.Build(topo)
	study := net.Children(net.OfKind(netsim.RNC)[0])[:3]
	return &serve.AssessRequest{
		Topology:  &serve.TopologySpec{Seed: 17},
		Generator: &serve.GeneratorSpec{Seed: genSeed},
		Index:     serve.IndexSpec{Start: "2012-03-01T00:00:00Z", Step: "6h", N: 28 * 4},
		Change: serve.ChangeSpec{
			ID:          "CHG-LOAD",
			Description: "loadgen scenario",
			Elements:    study,
			At:          "2012-03-15T00:00:00Z",
			TrueQuality: -1.5,
		},
		KPIs:       []string{"voice-retainability", "data-accessibility"},
		WindowDays: 14,
		Assessor:   &serve.AssessorSpec{Seed: 9},
		Controls:   &serve.ControlsSpec{Predicates: []string{"same-kind", "same-parent"}},
	}
}

// quantile reads the q-quantile from sorted ms latencies (nearest rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
