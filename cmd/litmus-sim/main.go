// Command litmus-sim generates a synthetic assessment dataset: a study
// element's KPI series with an injected change of known ground truth, and
// its control group's series, written as the CSV pair cmd/litmus
// consumes. It exercises the full substrate: topology generation,
// spatially correlated KPI synthesis, external factors, and
// domain-knowledge-guided control selection.
//
// Usage:
//
//	litmus-sim -out ./data -quality -1.5 -factor 2.0 -seed 42
//	litmus -study ./data/study.csv -controls ./data/controls.csv \
//	       -change $(cat ./data/change_time.txt) -kpi voice-retainability
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/control"
	"repro/internal/extfactor"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/kpi"
	"repro/internal/netsim"
	"repro/internal/obscli"
	"repro/internal/timeseries"
)

// logger carries the command's structured diagnostics (stderr); the
// dataset summary stays on stdout. Initialized from -log-format/-log-level.
var logger *slog.Logger

func main() {
	var (
		outDir    = flag.String("out", "litmus-data", "output directory")
		seed      = flag.Int64("seed", 42, "generation seed")
		days      = flag.Int("days", 14, "window days before and after the change")
		stepH     = flag.Int("step", 6, "KPI bucket size in hours")
		quality   = flag.Float64("quality", -1.5, "true change effect in quality units (+ improves, - degrades, 0 none)")
		factor    = flag.Float64("factor", 1.5, "external factor severity overlapping the change (0 none)")
		region    = flag.String("region", "Northeast", "region for the study element")
		kpiName   = flag.String("kpi", "voice-retainability", "KPI to emit")
		controlsN = flag.Int("controls", 0, "cap control group size (0 = all matching)")
		faultSpec = flag.String("faults", "", "corrupt the emitted dataset: name[=rate],... or \"all\" (names: "+strings.Join(faults.KindNames(), ", ")+")")
		faultSeed = flag.Int64("fault-seed", 1, "fault-injection seed (same seed, same corruption)")
		faultRate = flag.Float64("fault-rate", 0, "default rate for -faults entries without an explicit rate (0 = "+fmt.Sprint(faults.DefaultRate)+")")
	)
	obsFlags := obscli.Register()
	logFlags := obscli.RegisterLog("text")
	flag.Parse()
	var err error
	logger, err = logFlags.Logger("litmus-sim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus-sim:", err)
		os.Exit(2)
	}
	scope, err := obsFlags.Scope("litmus-sim")
	if err != nil {
		fatalf("%v", err)
	}

	metric := kpi.VoiceRetainability
	found := false
	for _, k := range kpi.All() {
		if k.String() == *kpiName {
			metric, found = k, true
		}
	}
	if !found {
		fatalf("unknown KPI %q; known: %v", *kpiName, kpi.All())
	}
	reg := netsim.Region(*region)
	validRegion := false
	for _, r := range netsim.Regions() {
		if r == reg {
			validRegion = true
		}
	}
	if !validRegion {
		fatalf("unknown region %q; known: %v", *region, netsim.Regions())
	}

	topoScope := scope.Child("topology-build")
	topo := netsim.DefaultTopologyConfig()
	topo.Seed = *seed
	net := netsim.Build(topo)
	towers := net.Filter(func(e *netsim.Element) bool {
		return e.Kind == netsim.NodeB && e.Region == reg
	})
	topoScope.SetAttr("elements", fmt.Sprint(net.Len()))
	topoScope.End()
	if len(towers) == 0 {
		fatalf("no towers in region %s", reg)
	}
	study := towers[0]

	sel := &control.Selector{
		Net:       net,
		Predicate: control.And(control.SameKind(), control.SameParent()),
		MaxSize:   *controlsN,
		Obs:       scope,
	}
	controls, err := sel.Select([]string{study})
	if err != nil {
		fatalf("control selection: %v", err)
	}

	epoch := time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC)
	steps := *days * 2 * 24 / *stepH
	ix := timeseries.NewIndex(epoch, time.Duration(*stepH)*time.Hour, steps)
	changeAt := epoch.Add(time.Duration(*days) * 24 * time.Hour)

	gcfg := gen.DefaultConfig(ix)
	gcfg.Seed = *seed
	if *quality != 0 {
		gcfg.Effects = append(gcfg.Effects, gen.EffectOn("injected-change", []string{study}, changeAt, time.Time{}, *quality))
	}
	if *factor != 0 {
		gcfg.Factors = append(gcfg.Factors, extfactor.RegionWeatherEvent{
			Kind: extfactor.Thunderstorm, Label: "sim-factor", Region: reg,
			Start: changeAt, End: ix.End(), Severity: *factor,
		})
	}
	g := gen.New(net, gcfg)

	synthScope := scope.Child("series-synthesis")
	studySeries := g.Series(study, metric)
	panel := timeseries.NewPanel(ix)
	for _, id := range controls {
		panel.Add(id, g.Series(id, metric))
	}
	synthScope.SetAttr("series", fmt.Sprint(1+len(controls)))
	synthScope.End()

	// Optional fault injection: corrupt the emitted dataset so cmd/litmus
	// (and any other consumer) can be exercised against broken inputs
	// with a known clean twin one seed away. Missing observations are
	// written as empty CSV cells — the loader's missing-value convention.
	fset, err := faults.Parse(*faultSpec, *faultSeed, *faultRate)
	if err != nil {
		fatalf("%v", err)
	}
	if fset.Active() {
		fmt.Printf("fault injection:   %s (seed %d)\n", fset, *faultSeed)
		studySeries = fset.Series(study, studySeries)
		panel = fset.Panel(panel)
		if panel.Len() == 0 {
			fatalf("fault injection dropped every control element; raise -controls or lower the rate")
		}
	}
	controls = panel.IDs()
	cols := map[string][]float64{}
	for _, id := range controls {
		cols[id] = panel.MustSeries(id).Values
	}

	writeScope := scope.Child("csv-write")
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("%v", err)
	}
	if err := writeSeriesCSV(filepath.Join(*outDir, "study.csv"), ix, map[string][]float64{"value": studySeries.Values}, []string{"value"}); err != nil {
		fatalf("%v", err)
	}
	if err := writeSeriesCSV(filepath.Join(*outDir, "controls.csv"), ix, cols, controls); err != nil {
		fatalf("%v", err)
	}
	changeFile := filepath.Join(*outDir, "change_time.txt")
	if err := os.WriteFile(changeFile, []byte(changeAt.Format(time.RFC3339)+"\n"), 0o644); err != nil {
		fatalf("%v", err)
	}
	writeScope.End()

	fmt.Printf("study element:   %s (%s, %s)\n", study, metric, reg)
	fmt.Printf("control group:   %d siblings under %s\n", len(controls), net.MustElement(study).Parent)
	fmt.Printf("change time:     %s (written to %s)\n", changeAt.Format(time.RFC3339), changeFile)
	fmt.Printf("ground truth:    quality %+.2f (%s), factor severity %+.2f\n", *quality, truthLabel(metric, *quality), *factor)
	fmt.Printf("wrote %s and %s\n", filepath.Join(*outDir, "study.csv"), filepath.Join(*outDir, "controls.csv"))

	if err := obsFlags.Report(os.Stdout, scope); err != nil {
		fatalf("writing observability report: %v", err)
	}
}

func truthLabel(metric kpi.KPI, quality float64) string {
	switch {
	case quality == 0:
		return "no impact"
	case (quality > 0) == metric.HigherIsBetter() || quality > 0:
		// Positive quality improves every KPI's goodness.
		return "improvement expected"
	default:
		return "degradation expected"
	}
}

func writeSeriesCSV(path string, ix timeseries.Index, cols map[string][]float64, order []string) error {
	var sb strings.Builder
	sb.WriteString("timestamp")
	for _, id := range order {
		sb.WriteString("," + id)
	}
	sb.WriteString("\n")
	for i := 0; i < ix.N; i++ {
		sb.WriteString(ix.TimeAt(i).Format(time.RFC3339))
		for _, id := range order {
			// Missing observations are empty cells: the cmd/litmus loader
			// rejects literal "NaN" tokens as malformed data.
			if v := cols[id][i]; math.IsNaN(v) {
				sb.WriteString(",")
			} else {
				sb.WriteString(fmt.Sprintf(",%.6g", v))
			}
		}
		sb.WriteString("\n")
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
