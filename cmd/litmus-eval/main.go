// Command litmus-eval reproduces the paper's evaluation tables end to
// end: Table 2 (known assessments of 313 real-change cases) and Table 4
// (8010 synthetic-injection cases), comparing the study-group-only
// baseline, Difference in Differences, and the Litmus robust spatial
// regression. A fault sweep mode re-runs the synthetic grid — including
// the adversarial congestion-coupled and heterogeneous-effect families —
// across telemetry corruption rates and reports robustness as a curve.
//
// Usage:
//
//	litmus-eval -table 2          # Table 2 (known assessments, exact)
//	litmus-eval -table 4          # Table 4 (full 8010 cases; minutes)
//	litmus-eval -table 4 -scale 0.1   # Table 4 at 10% volume (seconds)
//	litmus-eval -table all
//	litmus-eval -sweep -scale 0.05    # fault sweep, writes EVAL_6.json
//	litmus-eval -sweep -sweep-rates 0,0.1 -faults gap,dropcol
//
// The shared observability flags -trace, -metrics and -pprof (see
// internal/obscli) instrument the whole evaluation run; the reported
// tables are bit-identical with and without them.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/obscli"
	"repro/internal/report"
)

// logger carries the command's structured diagnostics (stderr); the
// evaluation tables stay on stdout. Initialized from
// -log-format/-log-level.
var logger *slog.Logger

// options holds the parsed command line. Flag registration is split from
// main so tests can drive parsing and validation on a private FlagSet.
type options struct {
	table      string
	scale      float64
	rows       bool
	ablation   bool
	workers    int
	sweep      bool
	sweepRates string
	sweepOut   string
	faultSpec  string
	faultSeed  int64

	// rates is the parsed form of sweepRates, filled by validate.
	rates []float64
}

func registerOptions(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.table, "table", "all", `which table to reproduce: "2", "4" or "all"`)
	fs.Float64Var(&o.scale, "scale", 1.0, "case-volume scale for the synthetic grid (1.0 = the paper's 8010 cases)")
	fs.BoolVar(&o.rows, "rows", false, "also print Table 2's per-change rows")
	fs.BoolVar(&o.ablation, "ablation", false, "run the design-choice ablation grid instead of the tables")
	fs.IntVar(&o.workers, "workers", 0, "assessment worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	fs.BoolVar(&o.sweep, "sweep", false, "run the fault sweep: the synthetic grid plus adversarial families across corruption rates")
	fs.StringVar(&o.sweepRates, "sweep-rates", "0,0.01,0.05,0.1,0.2", "comma-separated fault rates for -sweep, each in [0, 1]")
	fs.StringVar(&o.sweepOut, "sweep-out", "EVAL_6.json", "path for the machine-readable sweep result (empty = don't write)")
	fs.StringVar(&o.faultSpec, "faults", "all", "fault injector spec for -sweep (internal/faults syntax)")
	fs.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the per-case fault streams")
	return o
}

// validate rejects inconsistent flag combinations and parses the sweep
// rate list.
func (o *options) validate() error {
	if o.scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %v", o.scale)
	}
	switch o.table {
	case "2", "4", "all":
	default:
		return fmt.Errorf("unknown table %q (want 2, 4 or all)", o.table)
	}
	if o.sweep && o.ablation {
		return fmt.Errorf("-sweep and -ablation are mutually exclusive")
	}
	if o.sweep && o.table == "2" {
		return fmt.Errorf("-sweep runs the synthetic grid; it cannot reproduce Table 2")
	}
	if o.sweep {
		rates, err := parseRates(o.sweepRates)
		if err != nil {
			return err
		}
		o.rates = rates
	}
	return nil
}

// parseRates parses a comma-separated fault-rate list.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sweep rate %q: %v", f, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("sweep rate %v outside [0, 1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sweep-rates %q contains no rates", s)
	}
	return out, nil
}

func main() {
	o := registerOptions(flag.CommandLine)
	obsFlags := obscli.Register()
	logFlags := obscli.RegisterLog("text")
	flag.Parse()
	var err error
	logger, err = logFlags.Logger("litmus-eval")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus-eval:", err)
		os.Exit(2)
	}
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "litmus-eval:", err)
		os.Exit(2)
	}
	scope, err := obsFlags.Scope("litmus-eval")
	if err != nil {
		fatal(err)
	}
	logger.Debug("starting", "table", o.table, "scale", o.scale, "sweep", o.sweep)

	switch {
	case o.ablation:
		runAblation(o.scale, o.workers, scope)
	case o.sweep:
		runSweep(o, scope)
	default:
		switch o.table {
		case "2":
			runTable2(o.rows, o.workers, scope)
		case "4":
			runTable4(o.scale, o.workers, scope)
		case "all":
			runTable2(o.rows, o.workers, scope)
			fmt.Println()
			runTable4(o.scale, o.workers, scope)
		}
	}
	if err := obsFlags.Report(os.Stdout, scope); err != nil {
		fatal(err)
	}
}

func runSweep(o *options, scope *obs.Scope) {
	base := eval.DefaultSyntheticConfig().WithAdversarialCases()
	if o.scale != 1.0 {
		base = base.ScaleCases(o.scale)
	}
	base.Assessor.Workers = o.workers
	start := time.Now()
	res, err := eval.RunSweep(eval.SweepConfig{
		Base:      base,
		Rates:     o.rates,
		FaultSpec: o.faultSpec,
		FaultSeed: o.faultSeed,
		Obs:       scope,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Robustness curve — %d rates × %d cases, %v\n",
		len(res.Rates), res.CasesPerRate, time.Since(start).Round(time.Millisecond))
	if err := report.WriteSweepTable(os.Stdout, res); err != nil {
		fatal(err)
	}
	if o.sweepOut != "" {
		f, err := os.Create(o.sweepOut)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", o.sweepOut)
	}
}

func runAblation(scale float64, workers int, scope *obs.Scope) {
	cfg := eval.DefaultSyntheticConfig()
	if scale != 1.0 {
		cfg = cfg.ScaleCases(scale)
	}
	cfg.Assessor.Workers = workers
	cfg.Obs = scope
	start := time.Now()
	res, err := eval.RunAblation(cfg, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Design-choice ablation (%d cases per variant, %v)\n",
		res.Cases, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-20s %10s %10s %10s %10s\n", "variant", "precision", "recall", "tnr", "accuracy")
	for _, v := range res.Variants {
		m := res.Matrices[v.Name]
		fmt.Printf("%-20s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", v.Name,
			100*m.Precision(), 100*m.Recall(), 100*m.TrueNegativeRate(), 100*m.Accuracy())
	}
}

func runTable2(rows bool, workers int, scope *obs.Scope) {
	start := time.Now()
	cfg := eval.DefaultKnownConfig()
	cfg.Workers = workers
	cfg.Obs = scope
	res, err := eval.RunKnownAssessments(cfg)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("Table 2 — evaluation using known assessments (%d cases, %v)",
		res.TotalCases(), time.Since(start).Round(time.Millisecond))
	if err := report.WriteSummaryTable(os.Stdout, title, res.Matrices); err != nil {
		fatal(err)
	}
	if rows {
		fmt.Println()
		if err := report.WriteKnownRows(os.Stdout, res); err != nil {
			fatal(err)
		}
	}
}

func runTable4(scale float64, workers int, scope *obs.Scope) {
	cfg := eval.DefaultSyntheticConfig()
	if scale != 1.0 {
		cfg = cfg.ScaleCases(scale)
	}
	cfg.Assessor.Workers = workers
	cfg.Obs = scope
	start := time.Now()
	res, err := eval.RunSynthetic(cfg)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("Table 4 — evaluation using synthetic injection (%d cases, %v)",
		res.TotalCases(), time.Since(start).Round(time.Millisecond))
	if err := report.WriteSummaryTable(os.Stdout, title, res.Matrices); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
