// Command litmus-eval reproduces the paper's evaluation tables end to
// end: Table 2 (known assessments of 313 real-change cases) and Table 4
// (8010 synthetic-injection cases), comparing the study-group-only
// baseline, Difference in Differences, and the Litmus robust spatial
// regression.
//
// Usage:
//
//	litmus-eval -table 2          # Table 2 (known assessments, exact)
//	litmus-eval -table 4          # Table 4 (full 8010 cases; minutes)
//	litmus-eval -table 4 -scale 0.1   # Table 4 at 10% volume (seconds)
//	litmus-eval -table all
//
// The shared observability flags -trace, -metrics and -pprof (see
// internal/obscli) instrument the whole evaluation run; the reported
// tables are bit-identical with and without them.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/obscli"
	"repro/internal/report"
)

func main() {
	var (
		table    = flag.String("table", "all", `which table to reproduce: "2", "4" or "all"`)
		scale    = flag.Float64("scale", 1.0, "case-volume scale for Table 4 (1.0 = the paper's 8010 cases)")
		rows     = flag.Bool("rows", false, "also print Table 2's per-change rows")
		ablation = flag.Bool("ablation", false, "run the design-choice ablation grid instead of the tables")
		workers  = flag.Int("workers", 0, "assessment worker pool size (0 = GOMAXPROCS; results are identical for any value)")
	)
	obsFlags := obscli.Register()
	flag.Parse()
	scope, err := obsFlags.Scope("litmus-eval")
	if err != nil {
		fatal(err)
	}

	if *ablation {
		runAblation(*scale, *workers, scope)
	} else {
		switch *table {
		case "2":
			runTable2(*rows, *workers, scope)
		case "4":
			runTable4(*scale, *workers, scope)
		case "all":
			runTable2(*rows, *workers, scope)
			fmt.Println()
			runTable4(*scale, *workers, scope)
		default:
			fmt.Fprintf(os.Stderr, "litmus-eval: unknown table %q (want 2, 4 or all)\n", *table)
			os.Exit(2)
		}
	}
	if err := obsFlags.Report(os.Stdout, scope); err != nil {
		fatal(err)
	}
}

func runAblation(scale float64, workers int, scope *obs.Scope) {
	cfg := eval.DefaultSyntheticConfig()
	if scale != 1.0 {
		cfg = cfg.ScaleCases(scale)
	}
	cfg.Assessor.Workers = workers
	cfg.Obs = scope
	start := time.Now()
	res, err := eval.RunAblation(cfg, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Design-choice ablation (%d cases per variant, %v)\n",
		res.Cases, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-20s %10s %10s %10s %10s\n", "variant", "precision", "recall", "tnr", "accuracy")
	for _, v := range res.Variants {
		m := res.Matrices[v.Name]
		fmt.Printf("%-20s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", v.Name,
			100*m.Precision(), 100*m.Recall(), 100*m.TrueNegativeRate(), 100*m.Accuracy())
	}
}

func runTable2(rows bool, workers int, scope *obs.Scope) {
	start := time.Now()
	cfg := eval.DefaultKnownConfig()
	cfg.Workers = workers
	cfg.Obs = scope
	res, err := eval.RunKnownAssessments(cfg)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("Table 2 — evaluation using known assessments (%d cases, %v)",
		res.TotalCases(), time.Since(start).Round(time.Millisecond))
	if err := report.WriteSummaryTable(os.Stdout, title, res.Matrices); err != nil {
		fatal(err)
	}
	if rows {
		fmt.Println()
		if err := report.WriteKnownRows(os.Stdout, res); err != nil {
			fatal(err)
		}
	}
}

func runTable4(scale float64, workers int, scope *obs.Scope) {
	cfg := eval.DefaultSyntheticConfig()
	if scale != 1.0 {
		cfg = cfg.ScaleCases(scale)
	}
	cfg.Assessor.Workers = workers
	cfg.Obs = scope
	start := time.Now()
	res, err := eval.RunSynthetic(cfg)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("Table 4 — evaluation using synthetic injection (%d cases, %v)",
		res.TotalCases(), time.Since(start).Round(time.Millisecond))
	if err := report.WriteSummaryTable(os.Stdout, title, res.Matrices); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "litmus-eval:", err)
	os.Exit(1)
}
