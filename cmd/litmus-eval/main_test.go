package main

import (
	"flag"
	"io"
	"reflect"
	"testing"
)

// parse runs registerOptions + validate on a private FlagSet, the same
// path main takes.
func parse(t *testing.T, args ...string) (*options, error) {
	t.Helper()
	fs := flag.NewFlagSet("litmus-eval", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o := registerOptions(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, o.validate()
}

func TestDefaults(t *testing.T) {
	o, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if o.table != "all" || o.scale != 1.0 || o.sweep || o.ablation || o.rows {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.sweepOut != "EVAL_6.json" || o.faultSpec != "all" || o.faultSeed != 1 {
		t.Errorf("sweep defaults wrong: %+v", o)
	}
}

func TestTableSelection(t *testing.T) {
	for _, tbl := range []string{"2", "4", "all"} {
		o, err := parse(t, "-table", tbl)
		if err != nil {
			t.Errorf("-table %s rejected: %v", tbl, err)
			continue
		}
		if o.table != tbl {
			t.Errorf("-table %s parsed as %q", tbl, o.table)
		}
	}
	for _, tbl := range []string{"1", "3", "table4", ""} {
		if _, err := parse(t, "-table", tbl); err == nil {
			t.Errorf("-table %q accepted", tbl)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	o, err := parse(t, "-table", "4", "-scale", "0.1")
	if err != nil {
		t.Fatal(err)
	}
	if o.scale != 0.1 {
		t.Errorf("scale = %v, want 0.1", o.scale)
	}
	for _, bad := range []string{"0", "-1", "-0.5"} {
		if _, err := parse(t, "-scale", bad); err == nil {
			t.Errorf("-scale %s accepted", bad)
		}
	}
}

func TestSweepFlagParsing(t *testing.T) {
	o, err := parse(t, "-sweep", "-sweep-rates", " 0, 0.05 ,0.2", "-faults", "gap,dropcol", "-fault-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if !o.sweep || o.faultSpec != "gap,dropcol" || o.faultSeed != 9 {
		t.Errorf("sweep flags wrong: %+v", o)
	}
	if want := []float64{0, 0.05, 0.2}; !reflect.DeepEqual(o.rates, want) {
		t.Errorf("rates = %v, want %v", o.rates, want)
	}
}

func TestInvalidCombos(t *testing.T) {
	cases := [][]string{
		{"-sweep", "-ablation"},
		{"-sweep", "-table", "2"},
		{"-sweep", "-sweep-rates", "0,2"},
		{"-sweep", "-sweep-rates", "-0.1"},
		{"-sweep", "-sweep-rates", "abc"},
		{"-sweep", "-sweep-rates", ",,"},
		{"-table", "5"},
		{"-scale", "0"},
	}
	for _, args := range cases {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Rate garbage without -sweep is tolerated: the flag is unused.
	if _, err := parse(t, "-sweep-rates", "abc"); err != nil {
		t.Errorf("unused -sweep-rates validated anyway: %v", err)
	}
	// -sweep composes with the synthetic tables and ablation-free flags.
	for _, args := range [][]string{
		{"-sweep"},
		{"-sweep", "-table", "4"},
		{"-sweep", "-table", "all"},
		{"-sweep", "-scale", "0.05", "-workers", "4"},
	} {
		if _, err := parse(t, args...); err != nil {
			t.Errorf("args %v rejected: %v", args, err)
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates("0,0.01,0.05,0.1,0.2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{0, 0.01, 0.05, 0.1, 0.2}) {
		t.Errorf("parseRates = %v", got)
	}
	if _, err := parseRates("0.5,1.01"); err == nil {
		t.Error("rate above 1 accepted")
	}
	if _, err := parseRates(""); err == nil {
		t.Error("empty rate list accepted")
	}
}
