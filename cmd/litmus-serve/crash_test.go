package main

// Crash-recovery smoke test of the real litmus-serve binary: boot it
// with a journal, drive it with concurrent distinct requests, SIGKILL it
// mid-run (no drain, no fsync — the hard crash the journal exists for),
// restart it on the same journal directory, and require that every
// result a client had in hand before the crash is served byte-identical
// after replay, without recomputation.
//
// Gated behind LITMUS_CRASH_SMOKE=1 (it shells out to `go build`); run
// via `make crash-smoke` or directly:
//
//	LITMUS_CRASH_SMOKE=1 go test ./cmd/litmus-serve/ -run TestCrashRecoverySmoke

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// startServe boots the binary and returns the running command plus the
// base URL parsed from its stdout announcement.
func startServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			return cmd, strings.TrimSpace(line[i+len("listening on "):])
		}
	}
	_ = cmd.Process.Kill()
	t.Fatalf("litmus-serve never announced its address: %v", scanner.Err())
	return nil, ""
}

// crashRequest builds a distinct-digest request per seed, sized so a
// single assessment takes a few worker milliseconds — long enough that
// the kill lands mid-stream, short enough to keep the smoke fast.
func crashRequest(t *testing.T, net *netsim.Network, seed int64) *serve.AssessRequest {
	t.Helper()
	rncs := net.OfKind(netsim.RNC)
	if len(rncs) == 0 {
		t.Fatal("golden topology has no RNCs")
	}
	return &serve.AssessRequest{
		Topology:  &serve.TopologySpec{Seed: 17},
		Generator: &serve.GeneratorSpec{Seed: seed},
		Index:     serve.IndexSpec{Start: "2012-03-01T00:00:00Z", Step: "6h", N: 28 * 4},
		Change: serve.ChangeSpec{
			ID:          fmt.Sprintf("CHG-CRASH-%d", seed),
			Elements:    net.Children(rncs[0])[:3],
			At:          "2012-03-15T00:00:00Z",
			TrueQuality: -1.5,
		},
		KPIs:       []string{"voice-retainability"},
		WindowDays: 14,
		Assessor:   &serve.AssessorSpec{Seed: 9, Iterations: 120},
	}
}

// waitReady polls /readyz until it answers 200 and returns the decoded
// ready body (which carries replayedResults when a journal is attached).
func waitReady(t *testing.T, ctx context.Context, baseURL string) map[string]any {
	t.Helper()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			var body map[string]any
			dec := json.NewDecoder(resp.Body)
			decErr := dec.Decode(&body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if decErr != nil {
					t.Fatalf("decoding ready body: %v", decErr)
				}
				return body
			}
		}
		select {
		case <-ctx.Done():
			t.Fatalf("server at %s never became ready: %v", baseURL, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestCrashRecoverySmoke(t *testing.T) {
	if os.Getenv("LITMUS_CRASH_SMOKE") != "1" {
		t.Skip("set LITMUS_CRASH_SMOKE=1 to run the crash-recovery smoke test")
	}

	bin := filepath.Join(t.TempDir(), "litmus-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building litmus-serve: %v\n%s", err, out)
	}
	journalDir := filepath.Join(t.TempDir(), "journal")

	topo := netsim.DefaultTopologyConfig()
	topo.Seed = 17
	network := netsim.Build(topo)

	// Phase 1: boot with the journal, pour in distinct requests, and
	// SIGKILL once a handful of results are in client hands.
	cmd, baseURL := startServe(t, bin, "-addr", "127.0.0.1:0", "-workers", "2", "-journal-dir", journalDir)
	defer func() { _ = cmd.Process.Kill() }()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl := client.New(baseURL, nil)
	cl.PollInterval = 5 * time.Millisecond

	const total = 24   // requests poured in before/through the crash
	const killAfter = 8 // completed results in hand when the kill fires

	var mu sync.Mutex
	completed := make(map[string][]byte) // digest → result bytes the client held pre-crash
	killed := make(chan struct{})
	var killOnce sync.Once

	var wg sync.WaitGroup
	work := make(chan int64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range work {
				req := crashRequest(t, network, seed)
				id, err := serve.CanonicalJobID(req)
				if err != nil {
					t.Errorf("canonical id for seed %d: %v", seed, err)
					continue
				}
				b, err := cl.Assess(ctx, req)
				if err != nil {
					// Requests in flight when the process dies fail with
					// transport errors; that is the crash, not a bug.
					continue
				}
				mu.Lock()
				completed[id] = b
				n := len(completed)
				mu.Unlock()
				if n >= killAfter {
					killOnce.Do(func() {
						if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
							t.Errorf("SIGKILL: %v", err)
						}
						close(killed)
					})
				}
			}
		}()
	}
	for seed := int64(5001); seed < 5001+total; seed++ {
		work <- seed
	}
	close(work)
	wg.Wait()
	select {
	case <-killed:
	default:
		t.Fatalf("workload finished without triggering the kill — only %d completions", len(completed))
	}
	_ = cmd.Wait() // reap; exit status is the kill signal
	if len(completed) < killAfter {
		t.Fatalf("only %d results in hand before the crash, want >= %d", len(completed), killAfter)
	}
	t.Logf("killed litmus-serve with %d completed results in client hands", len(completed))

	// Phase 2: restart on the same journal. Replay must resurrect every
	// completed result — served byte-identical from the job table with no
	// recomputation (GET /result, never a resubmit).
	cmd2, baseURL2 := startServe(t, bin, "-addr", "127.0.0.1:0", "-workers", "2", "-journal-dir", journalDir)
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd2.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("restarted litmus-serve exited uncleanly after SIGTERM: %v", err)
			}
		case <-time.After(30 * time.Second):
			_ = cmd2.Process.Kill()
			t.Error("restarted litmus-serve did not exit within 30s of SIGTERM")
		}
	}()

	ready := waitReady(t, ctx, baseURL2)
	replayed, _ := ready["replayedResults"].(float64)
	if int(replayed) < len(completed) {
		t.Errorf("replay resurrected %d results, want >= %d", int(replayed), len(completed))
	}

	cl2 := client.New(baseURL2, nil)
	for id, want := range completed {
		got, err := cl2.Result(ctx, id)
		if err != nil {
			t.Errorf("result %s lost across the crash: %v", id, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("result %s differs after replay:\ngot:\n%s\nwant:\n%s", id, got, want)
		}
	}
	t.Logf("restart replayed %d results; all %d pre-crash results byte-identical", int(replayed), len(completed))
}
