// Command litmus-serve runs the Litmus assessment service: the HTTP API
// of internal/serve on one address, with graceful drain on SIGINT /
// SIGTERM.
//
// Usage:
//
//	litmus-serve -addr :8080
//	curl -s localhost:8080/healthz
//
// Flags tune the queue depth, worker count, result-cache size, per-job
// timeout and 429 Retry-After hint; -pprof mounts /debug/pprof on the
// same listener. The effective listen address is printed on stdout as
//
//	litmus-serve: listening on http://127.0.0.1:8080
//
// so callers binding ":0" (tests, the serve-smoke CI job) can discover
// the port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		queueDepth   = flag.Int("queue", 0, "submission queue depth (0 = default 64)")
		workers      = flag.Int("workers", 0, "concurrent assessment jobs (0 = default 2)")
		cacheSize    = flag.Int("cache", 0, "result cache size in entries (0 = default 256)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job execution deadline (0 = default 5m)")
		retryAfter   = flag.Duration("retry-after", 0, "backoff hint sent with 429 responses (0 = default 1s)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		enablePprof  = flag.Bool("pprof", false, "mount /debug/pprof on the service listener")
	)
	flag.Parse()

	s := serve.New(serve.Config{
		QueueDepth:  *queueDepth,
		Workers:     *workers,
		CacheSize:   *cacheSize,
		JobTimeout:  *jobTimeout,
		RetryAfter:  *retryAfter,
		EnablePprof: *enablePprof,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	httpServer := &http.Server{Handler: s.Handler()}
	fmt.Printf("litmus-serve: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "litmus-serve: %s — draining (timeout %s)\n", sig, *drainTimeout)
	case err := <-errc:
		fatalf("serving: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the job queue: queued
	// and in-flight assessments finish unless the drain timeout expires,
	// at which point their contexts are canceled.
	if err := httpServer.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "litmus-serve: http shutdown: %v\n", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "litmus-serve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "litmus-serve: drained cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "litmus-serve: "+format+"\n", args...)
	os.Exit(1)
}
