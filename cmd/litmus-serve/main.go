// Command litmus-serve runs the Litmus assessment service: the HTTP API
// of internal/serve on one address, with graceful drain on SIGINT /
// SIGTERM.
//
// Usage:
//
//	litmus-serve -addr :8080
//	curl -s localhost:8080/healthz
//
// Flags tune the queue depth, worker count, result-cache size, per-job
// timeout and 429 Retry-After hint; -pprof mounts /debug/pprof on the
// same listener. -journal-dir makes jobs durable: every submission and
// completion is appended to a crash-safe journal there (segments rotate
// at -journal-max-bytes), and on boot the journal is replayed —
// completed results come back into the cache, unfinished jobs are
// re-enqueued, and /readyz serves 503 "replaying" until replay lands.
// -flight-record turns on the flight recorder: the full
// metrics registry is snapshotted every -flight-interval into rotating
// binary segments under -flight-dir (decode them with litmus-rec).
// Diagnostics are structured log/slog records on stderr — JSON by
// default, -log-format text for human reading. The effective listen
// address is printed on stdout as
//
//	litmus-serve: listening on http://127.0.0.1:8080
//
// so callers binding ":0" (tests, the serve-smoke CI job) can discover
// the port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/obscli"
	"repro/internal/serve"
	"repro/internal/serve/journal"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		queueDepth     = flag.Int("queue", 0, "submission queue depth (0 = default 64)")
		workers        = flag.Int("workers", 0, "concurrent assessment jobs (0 = default 2)")
		cacheSize      = flag.Int("cache", 0, "result cache size in entries (0 = default 256)")
		jobTimeout     = flag.Duration("job-timeout", 0, "per-job execution deadline (0 = default 5m)")
		retryAfter     = flag.Duration("retry-after", 0, "backoff hint sent with 429 responses (0 = default 1s)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		enablePprof    = flag.Bool("pprof", false, "mount /debug/pprof on the service listener")
		journalDir     = flag.String("journal-dir", "", "durable job journal directory (empty = no journal)")
		journalMaxSeg  = flag.Int64("journal-max-bytes", 0, "journal segment rotation threshold in bytes (0 = default 4MiB)")
		flightRecord   = flag.Bool("flight-record", false, "snapshot the metrics registry into rotating binary segments")
		flightDir      = flag.String("flight-dir", "flight", "flight-recorder segment directory")
		flightInterval = flag.Duration("flight-interval", 0, "flight-recorder snapshot interval (0 = default 1s)")
	)
	logFlags := obscli.RegisterLog("json")
	flag.Parse()

	log, err := logFlags.Logger("litmus-serve")
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus-serve:", err)
		os.Exit(2)
	}

	// The registry is created up front so the journal and the server share
	// one: journal counters (appends, replays, compactions) land on the
	// same /metrics page as the job counters.
	reg := obs.NewRegistry()
	var jr *journal.Journal
	if *journalDir != "" {
		// Retain as many journaled results as the cache holds — replaying
		// more than the cache can admit would be wasted journal space.
		retain := *cacheSize
		if retain <= 0 {
			retain = 256
		}
		jr, err = journal.Open(journal.Options{
			Dir:             *journalDir,
			MaxSegmentBytes: *journalMaxSeg,
			RetainResults:   retain,
			Registry:        reg,
		})
		if err != nil {
			fatal(log, "opening journal", err)
		}
		log.Info("journal open", "dir", jr.Dir())
	}

	s := serve.New(serve.Config{
		QueueDepth:  *queueDepth,
		Workers:     *workers,
		CacheSize:   *cacheSize,
		JobTimeout:  *jobTimeout,
		RetryAfter:  *retryAfter,
		EnablePprof: *enablePprof,
		Logger:      log,
		Registry:    reg,
		Journal:     jr,
	})

	var rec *flightrec.Recorder
	if *flightRecord {
		rec, err = flightrec.New(s.Registry(), flightrec.Options{Dir: *flightDir, Interval: *flightInterval})
		if err != nil {
			fatal(log, "starting flight recorder", err)
		}
		rec.Start()
		log.Info("flight recorder started", "dir", rec.Dir(), "interval", rec.Interval().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(log, "listen", err)
	}
	httpServer := &http.Server{Handler: s.Handler()}
	// The listen address is program output (smoke tests and scripts parse
	// it), not a diagnostic: it stays on stdout in a fixed format.
	fmt.Printf("litmus-serve: listening on http://%s\n", ln.Addr())
	log.Info("serving", "addr", ln.Addr().String(), "flightRecord", *flightRecord)

	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("draining", "signal", sig.String(), "timeout", drainTimeout.String())
	case err := <-errc:
		fatal(log, "serving", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the job queue: queued
	// and in-flight assessments finish unless the drain timeout expires,
	// at which point their contexts are canceled.
	if err := httpServer.Shutdown(ctx); err != nil {
		log.Error("http shutdown", "error", err.Error())
	}
	drainErr := s.Shutdown(ctx)
	if jr != nil {
		// Closed after the drain: the last in-flight completions have been
		// journaled by then, and Close fsyncs the active segment so a clean
		// shutdown never depends on the OS flushing the page cache.
		if err := jr.Close(); err != nil {
			log.Error("closing journal", "error", err.Error())
		} else {
			log.Info("journal closed", "dir", jr.Dir())
		}
	}
	if rec != nil {
		// Closed after the drain so the final sample records the drained
		// state; Close itself appends that last snapshot.
		if err := rec.Close(); err != nil {
			log.Error("closing flight recorder", "error", err.Error())
		} else {
			log.Info("flight recorder closed", "samples", rec.Samples(), "dir", rec.Dir())
		}
	}
	if drainErr != nil {
		fatal(log, "drain incomplete", drainErr)
	}
	log.Info("drained cleanly")
}

func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "error", err.Error())
	os.Exit(1)
}
