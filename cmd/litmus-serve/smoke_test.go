package main

// Smoke test of the real litmus-serve binary: build it, boot it on an
// ephemeral port, drive it with the typed client, and assert the golden
// scenario's decision (and bytes) match the committed fixture, then
// SIGTERM and require a clean drain.
//
// Gated behind LITMUS_SERVE_SMOKE=1 (it shells out to `go build`); run
// via `make serve-smoke` or directly:
//
//	LITMUS_SERVE_SMOKE=1 go test ./cmd/litmus-serve/

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs/flightrec"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

func TestServeSmoke(t *testing.T) {
	if os.Getenv("LITMUS_SERVE_SMOKE") != "1" {
		t.Skip("set LITMUS_SERVE_SMOKE=1 to run the binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "litmus-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building litmus-serve: %v\n%s", err, out)
	}

	// The recording survives in LITMUS_SERVE_SMOKE_FLIGHT_DIR when set
	// (CI uploads it as an artifact); otherwise it lives and dies with
	// the test.
	flightDir := os.Getenv("LITMUS_SERVE_SMOKE_FLIGHT_DIR")
	if flightDir == "" {
		flightDir = filepath.Join(t.TempDir(), "flight")
	} else if err := os.RemoveAll(flightDir); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-flight-record", "-flight-dir", flightDir, "-flight-interval", "100ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// The binary announces its effective address on stdout.
	var baseURL string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			baseURL = strings.TrimSpace(line[i+len("listening on "):])
			break
		}
	}
	if baseURL == "" {
		t.Fatalf("litmus-serve never announced its address: %v", scanner.Err())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New(baseURL, nil)

	result, err := cl.Assess(ctx, smokeRequest(t))
	if err != nil {
		t.Fatalf("assessing over HTTP: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_assessment.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := append(append([]byte(nil), result...), '\n'); !bytes.Equal(got, want) {
		t.Errorf("binary result deviates from the golden fixture:\ngot:\n%s\nwant:\n%s", got, want)
	}
	var doc struct {
		Decision string `json:"decision"`
	}
	if err := json.Unmarshal(result, &doc); err != nil {
		t.Fatal(err)
	}
	var wantDoc struct {
		Decision string `json:"decision"`
	}
	if err := json.Unmarshal(want, &wantDoc); err != nil {
		t.Fatal(err)
	}
	if doc.Decision == "" || doc.Decision != wantDoc.Decision {
		t.Errorf("decision = %q, want %q", doc.Decision, wantDoc.Decision)
	}

	// One POST /v1/assess/batch round trip: the golden change plus a
	// sibling rides through the shared batch path. The golden entry was
	// just assessed, so it must come back cached with the exact golden
	// bytes; the sibling must assess cleanly.
	batchDoc, err := cl.AssessBatch(ctx, smokeBatchRequest(t))
	if err != nil {
		t.Fatalf("assessing batch over HTTP: %v", err)
	}
	if len(batchDoc.Entries) != 2 {
		t.Fatalf("batch returned %d entries, want 2", len(batchDoc.Entries))
	}
	for i, e := range batchDoc.Entries {
		if e.Error != "" {
			t.Errorf("batch entry %d (%s) failed: %s", i, e.ChangeID, e.Error)
		}
		if len(e.Assessment) == 0 {
			t.Errorf("batch entry %d (%s) has no assessment", i, e.ChangeID)
		}
	}
	if gold := batchDoc.Entries[0]; gold.Error == "" {
		if !gold.Cached {
			t.Errorf("golden batch entry was not served from the cache")
		}
		// The batch envelope compacts the embedded documents, so compare
		// modulo whitespace.
		var wantAssess, gotAssess bytes.Buffer
		if err := json.Compact(&wantAssess, result); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&gotAssess, gold.Assessment); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotAssess.Bytes(), wantAssess.Bytes()) {
			t.Errorf("golden batch entry deviates from the single-submission document:\ngot:\n%s\nwant:\n%s", gold.Assessment, result)
		}
	}

	// SIGTERM: the server must drain and exit zero.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("litmus-serve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("litmus-serve did not exit within 30s of SIGTERM")
	}

	// The drained process left a decodable flight recording behind, with
	// at least one sample for every metric the workload must have moved.
	segs, err := flightrec.DecodeDir(flightDir)
	if err != nil {
		t.Fatalf("decoding flight recording: %v", err)
	}
	samplesPerBase := map[string]int{}
	for _, s := range flightrec.Samples(segs) {
		for _, p := range s.Points {
			base := p.Name
			if i := strings.IndexByte(base, '{'); i >= 0 {
				base = base[:i]
			}
			samplesPerBase[base]++
		}
	}
	for _, base := range []string{
		"litmus_http_requests_total",
		"litmus_cache_misses_total",
		"litmus_jobs_total",
		"litmus_job_seconds",
		"litmus_job_queue_seconds",
		"litmus_job_run_seconds",
	} {
		if samplesPerBase[base] < 1 {
			t.Errorf("flight recording has no samples of %s; recorded bases: %v", base, samplesPerBase)
		}
	}

	// litmus-rec, the operator's decoder, renders the same recording.
	recBin := filepath.Join(t.TempDir(), "litmus-rec")
	if out, err := exec.Command("go", "build", "-o", recBin, "../litmus-rec").CombinedOutput(); err != nil {
		t.Fatalf("building litmus-rec: %v\n%s", err, out)
	}
	out, err := exec.Command(recBin, "-dir", flightDir).CombinedOutput()
	if err != nil {
		t.Fatalf("litmus-rec: %v\n%s", err, out)
	}
	for _, want := range []string{"Flight recording —", "litmus_jobs_total", "litmus_job_run_seconds"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("litmus-rec output lacks %q:\n%s", want, out)
		}
	}
}

func smokeRequest(t *testing.T) *serve.AssessRequest {
	t.Helper()
	topo := netsim.DefaultTopologyConfig()
	topo.Seed = 17
	net := netsim.Build(topo)
	rncs := net.OfKind(netsim.RNC)
	if len(rncs) == 0 {
		t.Fatal("golden topology has no RNCs")
	}
	return &serve.AssessRequest{
		Topology:  &serve.TopologySpec{Seed: 17},
		Generator: &serve.GeneratorSpec{Seed: 23},
		Index:     serve.IndexSpec{Start: "2012-03-01T00:00:00Z", Step: "6h", N: 28 * 4},
		Change: serve.ChangeSpec{
			ID:          "CHG-GOLD",
			Type:        "config-change",
			Description: "golden fixture change",
			Elements:    net.Children(rncs[0])[:3],
			At:          "2012-03-15T00:00:00Z",
			TrueQuality: -1.5,
		},
		KPIs:       []string{"voice-retainability", "data-accessibility"},
		WindowDays: 14,
		Assessor:   &serve.AssessorSpec{Seed: 9},
		Controls:   &serve.ControlsSpec{Predicates: []string{"same-kind", "same-parent"}},
	}
}

// smokeBatchRequest is the golden scenario reshaped as a two-entry
// changelog: the golden change itself (already cached by the time the
// batch runs) plus a clean sibling change on the next RNC.
func smokeBatchRequest(t *testing.T) *serve.BatchAssessRequest {
	t.Helper()
	single := smokeRequest(t)
	topo := netsim.DefaultTopologyConfig()
	topo.Seed = 17
	net := netsim.Build(topo)
	rncs := net.OfKind(netsim.RNC)
	if len(rncs) < 2 {
		t.Fatal("golden topology has fewer than two RNCs")
	}
	sibling := serve.ChangeSpec{
		ID:          "CHG-GOLD-B",
		Type:        "software-upgrade",
		Description: "smoke batch sibling change",
		Elements:    net.Children(rncs[1])[:3],
		At:          "2012-03-15T00:00:00Z",
		TrueQuality: 0,
	}
	return &serve.BatchAssessRequest{
		Topology:   single.Topology,
		Generator:  single.Generator,
		Index:      single.Index,
		Changes:    []serve.ChangeSpec{single.Change, sibling},
		KPIs:       single.KPIs,
		WindowDays: single.WindowDays,
		Assessor:   single.Assessor,
		Controls:   single.Controls,
	}
}
